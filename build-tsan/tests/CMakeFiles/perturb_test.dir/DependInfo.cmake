
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/geom/perturb_test.cpp" "tests/CMakeFiles/perturb_test.dir/geom/perturb_test.cpp.o" "gcc" "tests/CMakeFiles/perturb_test.dir/geom/perturb_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/psclip_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/segtree/CMakeFiles/psclip_segtree.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mt/CMakeFiles/psclip_mt.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/parallel/CMakeFiles/psclip_parallel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/seq/CMakeFiles/psclip_seq.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/psclip_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geom/CMakeFiles/psclip_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
