# Empty dependencies file for cross_engine_fuzz_test.
# This may be replaced when dependencies are built.
