# Empty dependencies file for area_oracle_test.
# This may be replaced when dependencies are built.
