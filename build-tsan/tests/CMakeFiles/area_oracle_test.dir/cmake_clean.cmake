file(REMOVE_RECURSE
  "CMakeFiles/area_oracle_test.dir/geom/area_oracle_test.cpp.o"
  "CMakeFiles/area_oracle_test.dir/geom/area_oracle_test.cpp.o.d"
  "area_oracle_test"
  "area_oracle_test.pdb"
  "area_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/area_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
