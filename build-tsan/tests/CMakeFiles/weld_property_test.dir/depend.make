# Empty dependencies file for weld_property_test.
# This may be replaced when dependencies are built.
