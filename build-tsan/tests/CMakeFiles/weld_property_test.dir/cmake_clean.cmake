file(REMOVE_RECURSE
  "CMakeFiles/weld_property_test.dir/core/weld_property_test.cpp.o"
  "CMakeFiles/weld_property_test.dir/core/weld_property_test.cpp.o.d"
  "weld_property_test"
  "weld_property_test.pdb"
  "weld_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weld_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
