file(REMOVE_RECURSE
  "CMakeFiles/inversions_test.dir/parallel/inversions_test.cpp.o"
  "CMakeFiles/inversions_test.dir/parallel/inversions_test.cpp.o.d"
  "inversions_test"
  "inversions_test.pdb"
  "inversions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inversions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
