# Empty compiler generated dependencies file for inversions_test.
# This may be replaced when dependencies are built.
