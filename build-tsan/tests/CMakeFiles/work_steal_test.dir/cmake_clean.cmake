file(REMOVE_RECURSE
  "CMakeFiles/work_steal_test.dir/parallel/work_steal_test.cpp.o"
  "CMakeFiles/work_steal_test.dir/parallel/work_steal_test.cpp.o.d"
  "work_steal_test"
  "work_steal_test.pdb"
  "work_steal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/work_steal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
