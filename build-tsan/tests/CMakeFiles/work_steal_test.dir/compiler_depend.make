# Empty compiler generated dependencies file for work_steal_test.
# This may be replaced when dependencies are built.
