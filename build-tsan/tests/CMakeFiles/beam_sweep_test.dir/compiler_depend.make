# Empty compiler generated dependencies file for beam_sweep_test.
# This may be replaced when dependencies are built.
