file(REMOVE_RECURSE
  "CMakeFiles/beam_sweep_test.dir/core/beam_sweep_test.cpp.o"
  "CMakeFiles/beam_sweep_test.dir/core/beam_sweep_test.cpp.o.d"
  "beam_sweep_test"
  "beam_sweep_test.pdb"
  "beam_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beam_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
