# Empty compiler generated dependencies file for vatti_test.
# This may be replaced when dependencies are built.
