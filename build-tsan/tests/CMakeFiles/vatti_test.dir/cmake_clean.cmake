file(REMOVE_RECURSE
  "CMakeFiles/vatti_test.dir/seq/vatti_test.cpp.o"
  "CMakeFiles/vatti_test.dir/seq/vatti_test.cpp.o.d"
  "vatti_test"
  "vatti_test.pdb"
  "vatti_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vatti_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
