# Empty compiler generated dependencies file for pip_test.
# This may be replaced when dependencies are built.
