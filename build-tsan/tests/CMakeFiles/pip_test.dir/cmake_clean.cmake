file(REMOVE_RECURSE
  "CMakeFiles/pip_test.dir/geom/pip_test.cpp.o"
  "CMakeFiles/pip_test.dir/geom/pip_test.cpp.o.d"
  "pip_test"
  "pip_test.pdb"
  "pip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
