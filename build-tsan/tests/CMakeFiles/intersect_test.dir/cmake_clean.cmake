file(REMOVE_RECURSE
  "CMakeFiles/intersect_test.dir/geom/intersect_test.cpp.o"
  "CMakeFiles/intersect_test.dir/geom/intersect_test.cpp.o.d"
  "intersect_test"
  "intersect_test.pdb"
  "intersect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intersect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
