file(REMOVE_RECURSE
  "CMakeFiles/svg_test.dir/geom/svg_test.cpp.o"
  "CMakeFiles/svg_test.dir/geom/svg_test.cpp.o.d"
  "svg_test"
  "svg_test.pdb"
  "svg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
