# Empty compiler generated dependencies file for martinez_test.
# This may be replaced when dependencies are built.
