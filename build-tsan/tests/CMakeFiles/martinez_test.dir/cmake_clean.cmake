file(REMOVE_RECURSE
  "CMakeFiles/martinez_test.dir/seq/martinez_test.cpp.o"
  "CMakeFiles/martinez_test.dir/seq/martinez_test.cpp.o.d"
  "martinez_test"
  "martinez_test.pdb"
  "martinez_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/martinez_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
