# Empty dependencies file for gis_sim_test.
# This may be replaced when dependencies are built.
