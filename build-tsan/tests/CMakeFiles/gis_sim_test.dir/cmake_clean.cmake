file(REMOVE_RECURSE
  "CMakeFiles/gis_sim_test.dir/data/gis_sim_test.cpp.o"
  "CMakeFiles/gis_sim_test.dir/data/gis_sim_test.cpp.o.d"
  "gis_sim_test"
  "gis_sim_test.pdb"
  "gis_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gis_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
