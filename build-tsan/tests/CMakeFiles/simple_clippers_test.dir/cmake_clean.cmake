file(REMOVE_RECURSE
  "CMakeFiles/simple_clippers_test.dir/seq/simple_clippers_test.cpp.o"
  "CMakeFiles/simple_clippers_test.dir/seq/simple_clippers_test.cpp.o.d"
  "simple_clippers_test"
  "simple_clippers_test.pdb"
  "simple_clippers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simple_clippers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
