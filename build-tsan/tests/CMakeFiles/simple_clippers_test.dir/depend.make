# Empty dependencies file for simple_clippers_test.
# This may be replaced when dependencies are built.
