# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for simple_clippers_test.
