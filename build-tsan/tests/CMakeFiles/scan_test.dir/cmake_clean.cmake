file(REMOVE_RECURSE
  "CMakeFiles/scan_test.dir/parallel/scan_test.cpp.o"
  "CMakeFiles/scan_test.dir/parallel/scan_test.cpp.o.d"
  "scan_test"
  "scan_test.pdb"
  "scan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
