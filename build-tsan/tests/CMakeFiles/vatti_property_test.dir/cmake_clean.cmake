file(REMOVE_RECURSE
  "CMakeFiles/vatti_property_test.dir/seq/vatti_property_test.cpp.o"
  "CMakeFiles/vatti_property_test.dir/seq/vatti_property_test.cpp.o.d"
  "vatti_property_test"
  "vatti_property_test.pdb"
  "vatti_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vatti_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
