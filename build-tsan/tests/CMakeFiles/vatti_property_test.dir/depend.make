# Empty dependencies file for vatti_property_test.
# This may be replaced when dependencies are built.
