# Empty dependencies file for multiset_test.
# This may be replaced when dependencies are built.
