file(REMOVE_RECURSE
  "CMakeFiles/multiset_test.dir/mt/multiset_test.cpp.o"
  "CMakeFiles/multiset_test.dir/mt/multiset_test.cpp.o.d"
  "multiset_test"
  "multiset_test.pdb"
  "multiset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
