# Empty compiler generated dependencies file for sweep_events_test.
# This may be replaced when dependencies are built.
