file(REMOVE_RECURSE
  "CMakeFiles/sweep_events_test.dir/seq/sweep_events_test.cpp.o"
  "CMakeFiles/sweep_events_test.dir/seq/sweep_events_test.cpp.o.d"
  "sweep_events_test"
  "sweep_events_test.pdb"
  "sweep_events_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_events_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
