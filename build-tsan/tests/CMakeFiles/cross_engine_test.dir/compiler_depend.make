# Empty compiler generated dependencies file for cross_engine_test.
# This may be replaced when dependencies are built.
