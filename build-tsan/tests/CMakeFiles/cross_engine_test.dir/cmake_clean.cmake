file(REMOVE_RECURSE
  "CMakeFiles/cross_engine_test.dir/cross_engine_test.cpp.o"
  "CMakeFiles/cross_engine_test.dir/cross_engine_test.cpp.o.d"
  "cross_engine_test"
  "cross_engine_test.pdb"
  "cross_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
