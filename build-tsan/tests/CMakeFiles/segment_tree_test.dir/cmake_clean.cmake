file(REMOVE_RECURSE
  "CMakeFiles/segment_tree_test.dir/segtree/segment_tree_test.cpp.o"
  "CMakeFiles/segment_tree_test.dir/segtree/segment_tree_test.cpp.o.d"
  "segment_tree_test"
  "segment_tree_test.pdb"
  "segment_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
