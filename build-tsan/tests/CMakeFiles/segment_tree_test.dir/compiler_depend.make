# Empty compiler generated dependencies file for segment_tree_test.
# This may be replaced when dependencies are built.
