# Empty dependencies file for csg_shapes.
# This may be replaced when dependencies are built.
