file(REMOVE_RECURSE
  "CMakeFiles/csg_shapes.dir/csg_shapes.cpp.o"
  "CMakeFiles/csg_shapes.dir/csg_shapes.cpp.o.d"
  "csg_shapes"
  "csg_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csg_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
