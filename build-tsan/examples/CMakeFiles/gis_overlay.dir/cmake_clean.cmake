file(REMOVE_RECURSE
  "CMakeFiles/gis_overlay.dir/gis_overlay.cpp.o"
  "CMakeFiles/gis_overlay.dir/gis_overlay.cpp.o.d"
  "gis_overlay"
  "gis_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gis_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
