# Empty compiler generated dependencies file for gis_overlay.
# This may be replaced when dependencies are built.
