file(REMOVE_RECURSE
  "CMakeFiles/viewport_clip.dir/viewport_clip.cpp.o"
  "CMakeFiles/viewport_clip.dir/viewport_clip.cpp.o.d"
  "viewport_clip"
  "viewport_clip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewport_clip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
