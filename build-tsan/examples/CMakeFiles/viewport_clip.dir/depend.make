# Empty dependencies file for viewport_clip.
# This may be replaced when dependencies are built.
