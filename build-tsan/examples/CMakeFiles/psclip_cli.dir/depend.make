# Empty dependencies file for psclip_cli.
# This may be replaced when dependencies are built.
