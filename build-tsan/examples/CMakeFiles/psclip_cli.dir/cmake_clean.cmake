file(REMOVE_RECURSE
  "CMakeFiles/psclip_cli.dir/psclip_cli.cpp.o"
  "CMakeFiles/psclip_cli.dir/psclip_cli.cpp.o.d"
  "psclip_cli"
  "psclip_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psclip_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
