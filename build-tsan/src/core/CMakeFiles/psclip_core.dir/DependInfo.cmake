
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/algorithm1.cpp" "src/core/CMakeFiles/psclip_core.dir/algorithm1.cpp.o" "gcc" "src/core/CMakeFiles/psclip_core.dir/algorithm1.cpp.o.d"
  "/root/repo/src/core/beam_sweep.cpp" "src/core/CMakeFiles/psclip_core.dir/beam_sweep.cpp.o" "gcc" "src/core/CMakeFiles/psclip_core.dir/beam_sweep.cpp.o.d"
  "/root/repo/src/core/merge.cpp" "src/core/CMakeFiles/psclip_core.dir/merge.cpp.o" "gcc" "src/core/CMakeFiles/psclip_core.dir/merge.cpp.o.d"
  "/root/repo/src/core/scanbeam.cpp" "src/core/CMakeFiles/psclip_core.dir/scanbeam.cpp.o" "gcc" "src/core/CMakeFiles/psclip_core.dir/scanbeam.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/geom/CMakeFiles/psclip_geom.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/parallel/CMakeFiles/psclip_parallel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/segtree/CMakeFiles/psclip_segtree.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/seq/CMakeFiles/psclip_seq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
