file(REMOVE_RECURSE
  "libpsclip_core.a"
)
