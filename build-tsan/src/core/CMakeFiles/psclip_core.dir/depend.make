# Empty dependencies file for psclip_core.
# This may be replaced when dependencies are built.
