file(REMOVE_RECURSE
  "CMakeFiles/psclip_core.dir/algorithm1.cpp.o"
  "CMakeFiles/psclip_core.dir/algorithm1.cpp.o.d"
  "CMakeFiles/psclip_core.dir/beam_sweep.cpp.o"
  "CMakeFiles/psclip_core.dir/beam_sweep.cpp.o.d"
  "CMakeFiles/psclip_core.dir/merge.cpp.o"
  "CMakeFiles/psclip_core.dir/merge.cpp.o.d"
  "CMakeFiles/psclip_core.dir/scanbeam.cpp.o"
  "CMakeFiles/psclip_core.dir/scanbeam.cpp.o.d"
  "libpsclip_core.a"
  "libpsclip_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psclip_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
