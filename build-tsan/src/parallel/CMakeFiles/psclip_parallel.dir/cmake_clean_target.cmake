file(REMOVE_RECURSE
  "libpsclip_parallel.a"
)
