# Empty dependencies file for psclip_parallel.
# This may be replaced when dependencies are built.
