
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/inversions.cpp" "src/parallel/CMakeFiles/psclip_parallel.dir/inversions.cpp.o" "gcc" "src/parallel/CMakeFiles/psclip_parallel.dir/inversions.cpp.o.d"
  "/root/repo/src/parallel/scan.cpp" "src/parallel/CMakeFiles/psclip_parallel.dir/scan.cpp.o" "gcc" "src/parallel/CMakeFiles/psclip_parallel.dir/scan.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "src/parallel/CMakeFiles/psclip_parallel.dir/thread_pool.cpp.o" "gcc" "src/parallel/CMakeFiles/psclip_parallel.dir/thread_pool.cpp.o.d"
  "/root/repo/src/parallel/work_steal.cpp" "src/parallel/CMakeFiles/psclip_parallel.dir/work_steal.cpp.o" "gcc" "src/parallel/CMakeFiles/psclip_parallel.dir/work_steal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
