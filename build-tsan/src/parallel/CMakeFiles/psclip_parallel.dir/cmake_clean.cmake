file(REMOVE_RECURSE
  "CMakeFiles/psclip_parallel.dir/inversions.cpp.o"
  "CMakeFiles/psclip_parallel.dir/inversions.cpp.o.d"
  "CMakeFiles/psclip_parallel.dir/scan.cpp.o"
  "CMakeFiles/psclip_parallel.dir/scan.cpp.o.d"
  "CMakeFiles/psclip_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/psclip_parallel.dir/thread_pool.cpp.o.d"
  "CMakeFiles/psclip_parallel.dir/work_steal.cpp.o"
  "CMakeFiles/psclip_parallel.dir/work_steal.cpp.o.d"
  "libpsclip_parallel.a"
  "libpsclip_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psclip_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
