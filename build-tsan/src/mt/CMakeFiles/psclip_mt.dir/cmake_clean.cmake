file(REMOVE_RECURSE
  "CMakeFiles/psclip_mt.dir/algorithm2.cpp.o"
  "CMakeFiles/psclip_mt.dir/algorithm2.cpp.o.d"
  "CMakeFiles/psclip_mt.dir/multiset.cpp.o"
  "CMakeFiles/psclip_mt.dir/multiset.cpp.o.d"
  "libpsclip_mt.a"
  "libpsclip_mt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psclip_mt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
