# Empty dependencies file for psclip_mt.
# This may be replaced when dependencies are built.
