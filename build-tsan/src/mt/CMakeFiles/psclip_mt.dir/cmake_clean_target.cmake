file(REMOVE_RECURSE
  "libpsclip_mt.a"
)
