# Empty dependencies file for psclip_seq.
# This may be replaced when dependencies are built.
