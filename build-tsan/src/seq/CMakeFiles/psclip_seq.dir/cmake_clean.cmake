file(REMOVE_RECURSE
  "CMakeFiles/psclip_seq.dir/bounds.cpp.o"
  "CMakeFiles/psclip_seq.dir/bounds.cpp.o.d"
  "CMakeFiles/psclip_seq.dir/greiner_hormann.cpp.o"
  "CMakeFiles/psclip_seq.dir/greiner_hormann.cpp.o.d"
  "CMakeFiles/psclip_seq.dir/liang_barsky.cpp.o"
  "CMakeFiles/psclip_seq.dir/liang_barsky.cpp.o.d"
  "CMakeFiles/psclip_seq.dir/martinez.cpp.o"
  "CMakeFiles/psclip_seq.dir/martinez.cpp.o.d"
  "CMakeFiles/psclip_seq.dir/out_poly.cpp.o"
  "CMakeFiles/psclip_seq.dir/out_poly.cpp.o.d"
  "CMakeFiles/psclip_seq.dir/rect_clip.cpp.o"
  "CMakeFiles/psclip_seq.dir/rect_clip.cpp.o.d"
  "CMakeFiles/psclip_seq.dir/sutherland_hodgman.cpp.o"
  "CMakeFiles/psclip_seq.dir/sutherland_hodgman.cpp.o.d"
  "CMakeFiles/psclip_seq.dir/sweep_events.cpp.o"
  "CMakeFiles/psclip_seq.dir/sweep_events.cpp.o.d"
  "CMakeFiles/psclip_seq.dir/vatti.cpp.o"
  "CMakeFiles/psclip_seq.dir/vatti.cpp.o.d"
  "libpsclip_seq.a"
  "libpsclip_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psclip_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
