
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seq/bounds.cpp" "src/seq/CMakeFiles/psclip_seq.dir/bounds.cpp.o" "gcc" "src/seq/CMakeFiles/psclip_seq.dir/bounds.cpp.o.d"
  "/root/repo/src/seq/greiner_hormann.cpp" "src/seq/CMakeFiles/psclip_seq.dir/greiner_hormann.cpp.o" "gcc" "src/seq/CMakeFiles/psclip_seq.dir/greiner_hormann.cpp.o.d"
  "/root/repo/src/seq/liang_barsky.cpp" "src/seq/CMakeFiles/psclip_seq.dir/liang_barsky.cpp.o" "gcc" "src/seq/CMakeFiles/psclip_seq.dir/liang_barsky.cpp.o.d"
  "/root/repo/src/seq/martinez.cpp" "src/seq/CMakeFiles/psclip_seq.dir/martinez.cpp.o" "gcc" "src/seq/CMakeFiles/psclip_seq.dir/martinez.cpp.o.d"
  "/root/repo/src/seq/out_poly.cpp" "src/seq/CMakeFiles/psclip_seq.dir/out_poly.cpp.o" "gcc" "src/seq/CMakeFiles/psclip_seq.dir/out_poly.cpp.o.d"
  "/root/repo/src/seq/rect_clip.cpp" "src/seq/CMakeFiles/psclip_seq.dir/rect_clip.cpp.o" "gcc" "src/seq/CMakeFiles/psclip_seq.dir/rect_clip.cpp.o.d"
  "/root/repo/src/seq/sutherland_hodgman.cpp" "src/seq/CMakeFiles/psclip_seq.dir/sutherland_hodgman.cpp.o" "gcc" "src/seq/CMakeFiles/psclip_seq.dir/sutherland_hodgman.cpp.o.d"
  "/root/repo/src/seq/sweep_events.cpp" "src/seq/CMakeFiles/psclip_seq.dir/sweep_events.cpp.o" "gcc" "src/seq/CMakeFiles/psclip_seq.dir/sweep_events.cpp.o.d"
  "/root/repo/src/seq/vatti.cpp" "src/seq/CMakeFiles/psclip_seq.dir/vatti.cpp.o" "gcc" "src/seq/CMakeFiles/psclip_seq.dir/vatti.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/geom/CMakeFiles/psclip_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
