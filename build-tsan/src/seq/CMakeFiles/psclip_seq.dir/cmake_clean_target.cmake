file(REMOVE_RECURSE
  "libpsclip_seq.a"
)
