file(REMOVE_RECURSE
  "CMakeFiles/psclip_geom.dir/area_oracle.cpp.o"
  "CMakeFiles/psclip_geom.dir/area_oracle.cpp.o.d"
  "CMakeFiles/psclip_geom.dir/geojson.cpp.o"
  "CMakeFiles/psclip_geom.dir/geojson.cpp.o.d"
  "CMakeFiles/psclip_geom.dir/intersect.cpp.o"
  "CMakeFiles/psclip_geom.dir/intersect.cpp.o.d"
  "CMakeFiles/psclip_geom.dir/nesting.cpp.o"
  "CMakeFiles/psclip_geom.dir/nesting.cpp.o.d"
  "CMakeFiles/psclip_geom.dir/perturb.cpp.o"
  "CMakeFiles/psclip_geom.dir/perturb.cpp.o.d"
  "CMakeFiles/psclip_geom.dir/point_in_polygon.cpp.o"
  "CMakeFiles/psclip_geom.dir/point_in_polygon.cpp.o.d"
  "CMakeFiles/psclip_geom.dir/polygon.cpp.o"
  "CMakeFiles/psclip_geom.dir/polygon.cpp.o.d"
  "CMakeFiles/psclip_geom.dir/predicates.cpp.o"
  "CMakeFiles/psclip_geom.dir/predicates.cpp.o.d"
  "CMakeFiles/psclip_geom.dir/svg.cpp.o"
  "CMakeFiles/psclip_geom.dir/svg.cpp.o.d"
  "CMakeFiles/psclip_geom.dir/validate.cpp.o"
  "CMakeFiles/psclip_geom.dir/validate.cpp.o.d"
  "CMakeFiles/psclip_geom.dir/wkt.cpp.o"
  "CMakeFiles/psclip_geom.dir/wkt.cpp.o.d"
  "libpsclip_geom.a"
  "libpsclip_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psclip_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
