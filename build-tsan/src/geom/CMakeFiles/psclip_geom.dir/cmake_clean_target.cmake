file(REMOVE_RECURSE
  "libpsclip_geom.a"
)
