
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/area_oracle.cpp" "src/geom/CMakeFiles/psclip_geom.dir/area_oracle.cpp.o" "gcc" "src/geom/CMakeFiles/psclip_geom.dir/area_oracle.cpp.o.d"
  "/root/repo/src/geom/geojson.cpp" "src/geom/CMakeFiles/psclip_geom.dir/geojson.cpp.o" "gcc" "src/geom/CMakeFiles/psclip_geom.dir/geojson.cpp.o.d"
  "/root/repo/src/geom/intersect.cpp" "src/geom/CMakeFiles/psclip_geom.dir/intersect.cpp.o" "gcc" "src/geom/CMakeFiles/psclip_geom.dir/intersect.cpp.o.d"
  "/root/repo/src/geom/nesting.cpp" "src/geom/CMakeFiles/psclip_geom.dir/nesting.cpp.o" "gcc" "src/geom/CMakeFiles/psclip_geom.dir/nesting.cpp.o.d"
  "/root/repo/src/geom/perturb.cpp" "src/geom/CMakeFiles/psclip_geom.dir/perturb.cpp.o" "gcc" "src/geom/CMakeFiles/psclip_geom.dir/perturb.cpp.o.d"
  "/root/repo/src/geom/point_in_polygon.cpp" "src/geom/CMakeFiles/psclip_geom.dir/point_in_polygon.cpp.o" "gcc" "src/geom/CMakeFiles/psclip_geom.dir/point_in_polygon.cpp.o.d"
  "/root/repo/src/geom/polygon.cpp" "src/geom/CMakeFiles/psclip_geom.dir/polygon.cpp.o" "gcc" "src/geom/CMakeFiles/psclip_geom.dir/polygon.cpp.o.d"
  "/root/repo/src/geom/predicates.cpp" "src/geom/CMakeFiles/psclip_geom.dir/predicates.cpp.o" "gcc" "src/geom/CMakeFiles/psclip_geom.dir/predicates.cpp.o.d"
  "/root/repo/src/geom/svg.cpp" "src/geom/CMakeFiles/psclip_geom.dir/svg.cpp.o" "gcc" "src/geom/CMakeFiles/psclip_geom.dir/svg.cpp.o.d"
  "/root/repo/src/geom/validate.cpp" "src/geom/CMakeFiles/psclip_geom.dir/validate.cpp.o" "gcc" "src/geom/CMakeFiles/psclip_geom.dir/validate.cpp.o.d"
  "/root/repo/src/geom/wkt.cpp" "src/geom/CMakeFiles/psclip_geom.dir/wkt.cpp.o" "gcc" "src/geom/CMakeFiles/psclip_geom.dir/wkt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
