# Empty dependencies file for psclip_geom.
# This may be replaced when dependencies are built.
