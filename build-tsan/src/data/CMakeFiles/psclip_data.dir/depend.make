# Empty dependencies file for psclip_data.
# This may be replaced when dependencies are built.
