
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/gis_sim.cpp" "src/data/CMakeFiles/psclip_data.dir/gis_sim.cpp.o" "gcc" "src/data/CMakeFiles/psclip_data.dir/gis_sim.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/data/CMakeFiles/psclip_data.dir/synthetic.cpp.o" "gcc" "src/data/CMakeFiles/psclip_data.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/geom/CMakeFiles/psclip_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
