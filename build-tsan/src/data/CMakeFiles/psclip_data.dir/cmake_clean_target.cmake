file(REMOVE_RECURSE
  "libpsclip_data.a"
)
