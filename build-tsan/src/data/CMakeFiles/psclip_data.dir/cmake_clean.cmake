file(REMOVE_RECURSE
  "CMakeFiles/psclip_data.dir/gis_sim.cpp.o"
  "CMakeFiles/psclip_data.dir/gis_sim.cpp.o.d"
  "CMakeFiles/psclip_data.dir/synthetic.cpp.o"
  "CMakeFiles/psclip_data.dir/synthetic.cpp.o.d"
  "libpsclip_data.a"
  "libpsclip_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psclip_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
