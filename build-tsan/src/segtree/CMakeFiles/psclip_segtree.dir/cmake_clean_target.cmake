file(REMOVE_RECURSE
  "libpsclip_segtree.a"
)
