# Empty dependencies file for psclip_segtree.
# This may be replaced when dependencies are built.
