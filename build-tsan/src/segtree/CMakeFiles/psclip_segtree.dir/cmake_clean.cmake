file(REMOVE_RECURSE
  "CMakeFiles/psclip_segtree.dir/segment_tree.cpp.o"
  "CMakeFiles/psclip_segtree.dir/segment_tree.cpp.o.d"
  "libpsclip_segtree.a"
  "libpsclip_segtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psclip_segtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
