file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_clippers.dir/bench_ablation_clippers.cpp.o"
  "CMakeFiles/bench_ablation_clippers.dir/bench_ablation_clippers.cpp.o.d"
  "bench_ablation_clippers"
  "bench_ablation_clippers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_clippers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
