# Empty dependencies file for bench_ablation_clippers.
# This may be replaced when dependencies are built.
