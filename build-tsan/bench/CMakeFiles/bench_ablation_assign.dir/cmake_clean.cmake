file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_assign.dir/bench_ablation_assign.cpp.o"
  "CMakeFiles/bench_ablation_assign.dir/bench_ablation_assign.cpp.o.d"
  "bench_ablation_assign"
  "bench_ablation_assign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_assign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
