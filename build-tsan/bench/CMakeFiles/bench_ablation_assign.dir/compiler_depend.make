# Empty compiler generated dependencies file for bench_ablation_assign.
# This may be replaced when dependencies are built.
