file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_inversions.dir/bench_table1_inversions.cpp.o"
  "CMakeFiles/bench_table1_inversions.dir/bench_table1_inversions.cpp.o.d"
  "bench_table1_inversions"
  "bench_table1_inversions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_inversions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
