# Empty dependencies file for bench_ablation_rectclip.
# This may be replaced when dependencies are built.
