file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rectclip.dir/bench_ablation_rectclip.cpp.o"
  "CMakeFiles/bench_ablation_rectclip.dir/bench_ablation_rectclip.cpp.o.d"
  "bench_ablation_rectclip"
  "bench_ablation_rectclip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rectclip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
