# Empty dependencies file for bench_fig12_absolute_speedup.
# This may be replaced when dependencies are built.
