file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_load_balance.dir/bench_fig11_load_balance.cpp.o"
  "CMakeFiles/bench_fig11_load_balance.dir/bench_fig11_load_balance.cpp.o.d"
  "bench_fig11_load_balance"
  "bench_fig11_load_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
