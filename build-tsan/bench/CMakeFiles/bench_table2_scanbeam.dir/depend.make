# Empty dependencies file for bench_table2_scanbeam.
# This may be replaced when dependencies are built.
