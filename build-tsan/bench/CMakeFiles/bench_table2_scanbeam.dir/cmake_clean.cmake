file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_scanbeam.dir/bench_table2_scanbeam.cpp.o"
  "CMakeFiles/bench_table2_scanbeam.dir/bench_table2_scanbeam.cpp.o.d"
  "bench_table2_scanbeam"
  "bench_table2_scanbeam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_scanbeam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
