file(REMOVE_RECURSE
  "CMakeFiles/bench_alg1_stages.dir/bench_alg1_stages.cpp.o"
  "CMakeFiles/bench_alg1_stages.dir/bench_alg1_stages.cpp.o.d"
  "bench_alg1_stages"
  "bench_alg1_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alg1_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
