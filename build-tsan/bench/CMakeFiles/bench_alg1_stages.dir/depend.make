# Empty dependencies file for bench_alg1_stages.
# This may be replaced when dependencies are built.
