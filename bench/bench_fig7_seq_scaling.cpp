// Fig. 7: sequential clipping time versus polygon size. The paper
// measures the GPC library and observes it is "relatively better at
// clipping smaller polygons in comparison to larger polygons" — i.e.
// super-linear growth — which motivates partitioning into slabs. We
// measure our Vatti clipper (the GPC stand-in) the same way and report
// time per edge to expose the same super-linear shape.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "data/synthetic.hpp"
#include "geom/bool_op.hpp"
#include "seq/vatti.hpp"

namespace {

void print_fig7() {
  using namespace psclip;
  bench::header("Fig. 7 — sequential clipper time vs polygon size",
                "paper Fig. 7");
  std::printf("%10s %12s %12s %12s %10s\n", "edges/poly", "time (ms)",
              "us/edge", "crossings", "out verts");
  double prev_per_edge = 0.0;
  for (int edges : {1000, 2000, 4000, 8000, 16000, 32000}) {
    const auto pair = data::synthetic_pair(11, edges);
    seq::VattiStats st;
    const double sec = bench::time_median3([&] {
      st = {};
      auto r = seq::vatti_clip(pair.subject, pair.clip,
                               geom::BoolOp::kIntersection, &st);
      benchmark::DoNotOptimize(r);
    });
    const double per_edge = sec * 1e6 / (2.0 * edges);
    std::printf("%10d %12.3f %12.3f %12lld %10lld\n", edges, sec * 1e3,
                per_edge, static_cast<long long>(st.intersections),
                static_cast<long long>(st.output_vertices));
    prev_per_edge = per_edge;
  }
  (void)prev_per_edge;
  std::printf("\nrising us/edge = the super-linearity that motivates "
              "Algorithm 2's partitioning\n");
}

void BM_VattiIntersection(benchmark::State& state) {
  using namespace psclip;
  const auto pair =
      data::synthetic_pair(11, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = seq::vatti_clip(pair.subject, pair.clip,
                             geom::BoolOp::kIntersection);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_VattiIntersection)->RangeMultiplier(2)->Range(512, 8192)
    ->Complexity();

}  // namespace

int main(int argc, char** argv) {
  print_fig7();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
