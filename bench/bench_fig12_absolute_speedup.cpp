// Fig. 12: absolute speedup of the multi-threaded clipper against the
// best sequential baseline. The paper's baseline is ArcGIS 10 (closed
// source; it reports 110 s for Intersect(3,4), 135 s for Union(3,4) and
// 28 s for Intersect(1,2) at full scale, and ~30x/27x/3.4x speedups). Our
// baseline substitution (DESIGN.md §3) is the whole-dataset single-sweep
// Vatti run, i.e. the best sequential time this library can produce.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "data/gis_sim.hpp"
#include "mt/multiset.hpp"
#include "seq/vatti.hpp"

int main() {
  using namespace psclip;
  const double scale = bench::dataset_scale();
  bench::header("Fig. 12 — absolute speedup vs sequential baseline",
                "paper Fig. 12");
  std::printf("dataset scale = %g; baseline = sequential Vatti sweep over "
              "the whole dataset (ArcGIS substitute)\n\n",
              scale);

  const auto d1 = data::make_dataset(1, scale);
  const auto d2 = data::make_dataset(2, scale);
  const auto d3 = data::make_dataset(3, scale);
  const auto d4 = data::make_dataset(4, scale);

  struct Job {
    const char* name;
    const geom::PolygonSet* a;
    const geom::PolygonSet* b;
    geom::BoolOp op;
    mt::MultisetAssign assign;
    double paper_arcgis_seconds;
    double paper_speedup;
  };
  const Job jobs[] = {
      {"Intersect(3,4)", &d3, &d4, geom::BoolOp::kIntersection,
       mt::MultisetAssign::kAuto, 110.0, 30.0},
      {"Union(3,4)", &d3, &d4, geom::BoolOp::kUnion,
       mt::MultisetAssign::kReplicate, 135.0, 27.0},
      {"Intersect(1,2)", &d1, &d2, geom::BoolOp::kIntersection,
       mt::MultisetAssign::kAuto, 28.0, 3.4},
  };

  const unsigned threads = bench::thread_ladder().back();
  std::printf("%-16s %14s %14s %10s %12s | %18s\n", "operation", "seq (ms)",
              "parallel (ms)", "speedup", "ideal-spdup",
              "paper (64 cores)");
  for (const auto& job : jobs) {
    geom::PolygonSet seq_result;
    const double seq_sec = bench::time_median3(
        [&] { seq_result = seq::vatti_clip(*job.a, *job.b, job.op); });
    par::ThreadPool pool(threads);
    mt::MultisetOptions o;
    o.slabs = threads;
    o.assign = job.assign;
    mt::Alg2Stats st;
    const double par_sec = bench::time_median3([&] {
      auto r = mt::multiset_clip(*job.a, *job.b, job.op, pool, o, &st);
      (void)r;
    });
    // Decomposition metrics from a serialized run (see bench_fig8).
    par::ThreadPool serial(1);
    const geom::PolygonSet par_result =
        mt::multiset_clip(*job.a, *job.b, job.op, serial, o, &st);
    const double area_dev =
        std::fabs(geom::signed_area(par_result) -
                  geom::signed_area(seq_result)) /
        (1.0 + std::fabs(geom::signed_area(seq_result)));
    double mx = 0.0;
    for (const auto& s : st.slabs) mx = std::max(mx, s.seconds);
    const double ideal = mx > 0.0 ? seq_sec / mx : 1.0;
    std::printf("%-16s %14.2f %14.2f %9.2fx %11.2fx | ArcGIS %.0fs, %4.1fx"
                "  (area dev %.1e, %s)\n",
                job.name, seq_sec * 1e3, par_sec * 1e3, seq_sec / par_sec,
                ideal, job.paper_arcgis_seconds, job.paper_speedup,
                area_dev, mt::to_string(o.assign));
  }
  std::printf("\nHardware note: wall-clock speedups track the host's core "
              "count (%u threads swept here); the paper used a 64-core "
              "Opteron.\n",
              threads);
  return 0;
}
