// Ablation: rectangle clipping method for Algorithm 2 Steps 4-5. The
// paper states: "in steps 4 and 5, we used Greiner-Hormann since we found
// it to be faster than GPC for rectangular clipping" — this bench
// reproduces that comparison with our GH, Vatti (GPC stand-in) and
// Sutherland-Hodgman.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "data/synthetic.hpp"
#include "seq/rect_clip.hpp"

namespace {

using psclip::seq::RectClipMethod;

void print_comparison() {
  using namespace psclip;
  bench::header("Ablation — rectangle clipping: GH vs Vatti vs SH",
                "paper §IV (Steps 4-5 choice)");
  std::printf("%8s | %10s %10s %10s   (ms per slab clip)\n", "edges", "GH",
              "Vatti", "SH");
  for (int edges : {1000, 4000, 16000}) {
    const auto pair = data::synthetic_pair(71, edges);
    const geom::BBox bb = geom::bounds(pair.subject);
    const geom::BBox slab{bb.xmin - 1, bb.ymin + 0.25 * bb.height(),
                          bb.xmax + 1, bb.ymin + 0.55 * bb.height()};
    double t[3];
    const RectClipMethod methods[3] = {RectClipMethod::kGreinerHormann,
                                       RectClipMethod::kVatti,
                                       RectClipMethod::kSutherlandHodgman};
    for (int i = 0; i < 3; ++i) {
      t[i] = bench::time_median3([&] {
        auto r = seq::rect_clip(pair.subject, slab, methods[i]);
        benchmark::DoNotOptimize(r);
      });
    }
    std::printf("%8d | %10.3f %10.3f %10.3f\n", edges, t[0] * 1e3, t[1] * 1e3,
                t[2] * 1e3);
  }
}

void BM_RectClip(benchmark::State& state) {
  using namespace psclip;
  const auto pair =
      data::synthetic_pair(71, static_cast<int>(state.range(0)));
  const geom::BBox bb = geom::bounds(pair.subject);
  const geom::BBox slab{bb.xmin - 1, bb.ymin + 0.25 * bb.height(),
                        bb.xmax + 1, bb.ymin + 0.55 * bb.height()};
  const auto method = static_cast<RectClipMethod>(state.range(1));
  for (auto _ : state) {
    auto r = seq::rect_clip(pair.subject, slab, method);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(seq::to_string(method));
}
BENCHMARK(BM_RectClip)
    ->Args({2048, 0})
    ->Args({2048, 1})
    ->Args({2048, 2})
    ->Args({8192, 0})
    ->Args({8192, 1})
    ->Args({8192, 2});

}  // namespace

int main(int argc, char** argv) {
  print_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
