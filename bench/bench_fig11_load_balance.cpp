// Fig. 11: per-thread load for Intersect(1,2). The urban-areas layer is
// heavily clustered, so equal-event-count slabs still receive very
// different amounts of clipping work — the load imbalance that limits the
// paper's Intersect(1,2) scaling to ~3.4x.

#include <cstdio>

#include "bench_util.hpp"
#include "data/gis_sim.hpp"
#include "mt/multiset.hpp"

int main() {
  using namespace psclip;
  const double scale = bench::dataset_scale();
  bench::header("Fig. 11 — per-slab load for Intersect(1,2)",
                "paper Fig. 11");

  const auto d1 = data::make_dataset(1, scale);
  const auto d2 = data::make_dataset(2, scale);

  const unsigned slabs = 8;
  // Serialized execution (one worker, 8 slabs): per-slab times are then
  // true work measurements rather than oversubscription artifacts.
  par::ThreadPool pool(1);
  mt::MultisetOptions o;
  o.slabs = slabs;
  mt::Alg2Stats st;
  mt::multiset_clip(d1, d2, geom::BoolOp::kIntersection, pool, o, &st);

  std::printf("%6s %12s %14s %14s\n", "slab", "time (ms)", "input edges",
              "out verts");
  double total = 0.0;
  for (std::size_t i = 0; i < st.slabs.size(); ++i) {
    const auto& s = st.slabs[i];
    std::printf("%6zu %12.3f %14lld %14lld\n", i, s.seconds * 1e3,
                static_cast<long long>(s.input_edges),
                static_cast<long long>(s.output_vertices));
    total += s.seconds;
  }
  std::printf("\nload imbalance (max/mean): %.2f — 1.0 would be perfectly "
              "balanced; the paper attributes Intersect(1,2)'s limited "
              "3.4x speedup to exactly this skew.\n",
              st.load_imbalance());
  std::printf("sum of slab clip times: %.3f ms\n", total * 1e3);
  return 0;
}
