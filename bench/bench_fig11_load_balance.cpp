// Fig. 11: per-thread load for Intersect(1,2). The urban-areas layer is
// heavily clustered, so equal-event-count slabs still receive very
// different amounts of clipping work — the load imbalance that limits the
// paper's Intersect(1,2) scaling to ~3.4x.
//
// Part B goes beyond the paper: the same skew is attacked with the
// work-stealing slab scheduler. The static one-slab-per-thread
// decomposition is compared against adaptive over-partitioning
// (Alg2Options::oversubscribe = 4): c × p slabs are queued on the pool's
// steal deques and idle workers steal half of a busy worker's queue, so the
// per-*worker* busy-time imbalance drops even though the per-*slab* skew is
// unchanged. A bit-identity check confirms scheduling never changes the
// output: the same decomposition produces byte-identical results no matter
// how many workers run it or who steals what.

#include <cstdio>

#include "bench_util.hpp"
#include "data/gis_sim.hpp"
#include "data/synthetic.hpp"
#include "mt/algorithm2.hpp"
#include "mt/multiset.hpp"

namespace {

using namespace psclip;

/// Two polygon sets whose clip cost is concentrated in a thin y-band:
/// a star polygram (few event points, O(n^2) self-crossings — expensive per
/// event) under a broad polygon field (many event points, almost no
/// crossings — cheap per event). Equal-event-count slabs put most slabs in
/// the cheap field and the whole polygram in one slab: exactly the skew of
/// Fig. 11.
struct SkewPair {
  geom::PolygonSet subject, clip;
};

SkewPair make_skewed_workload() {
  SkewPair w;
  const auto add_all = [](geom::PolygonSet& dst, geom::PolygonSet src) {
    for (auto& c : src.contours) dst.contours.push_back(std::move(c));
  };
  add_all(w.subject, data::star_polygram(31, 15, 40.0, 6.0, 6.0));
  add_all(w.subject, data::polygon_field(9101, 48, 80.0, 10));
  add_all(w.clip, data::star_polygram(29, 14, 41.0, 6.5, 6.0));
  add_all(w.clip, data::polygon_field(9102, 48, 80.0, 9));
  return w;
}

bool bit_identical(const geom::PolygonSet& a, const geom::PolygonSet& b) {
  if (a.contours.size() != b.contours.size()) return false;
  for (std::size_t i = 0; i < a.contours.size(); ++i) {
    const auto& ca = a.contours[i];
    const auto& cb = b.contours[i];
    if (ca.hole != cb.hole || ca.pts.size() != cb.pts.size()) return false;
    for (std::size_t j = 0; j < ca.pts.size(); ++j)
      if (ca.pts[j].x != cb.pts[j].x || ca.pts[j].y != cb.pts[j].y)
        return false;
  }
  return true;
}

void print_workers(const char* label, const mt::Alg2Stats& st) {
  std::printf("\n%s\n", label);
  std::printf("%8s %10s %12s %8s %10s %10s\n", "worker", "slab jobs",
              "busy (ms)", "steals", "stolen", "idle (ms)");
  for (std::size_t i = 0; i < st.workers.size(); ++i) {
    const auto& w = st.workers[i];
    const bool caller = i + 1 == st.workers.size();
    std::printf("%8s %10llu %12.3f %8llu %10llu %10.3f\n",
                caller ? "caller" : std::to_string(i).c_str(),
                static_cast<unsigned long long>(w.slab_jobs),
                w.busy_seconds * 1e3,
                static_cast<unsigned long long>(w.steals),
                static_cast<unsigned long long>(w.tasks_stolen),
                w.idle_seconds * 1e3);
  }
  std::printf("slabs=%zu  per-slab imbalance (max/mean)=%.2f  "
              "per-worker imbalance (max/mean)=%.2f  steals=%llu\n",
              st.slabs.size(), st.load_imbalance(), st.worker_imbalance(),
              static_cast<unsigned long long>(st.total_steals()));
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::dataset_scale();
  const char* json = bench::json_path(argc, argv);
  bench::JsonReport report;
  report.field("figure", std::string("fig11_load_balance"));
  report.field("dataset_scale", scale);
  bench::header("Fig. 11 — per-slab load for Intersect(1,2)",
                "paper Fig. 11");

  const auto d1 = data::make_dataset(1, scale);
  const auto d2 = data::make_dataset(2, scale);

  const unsigned slabs = 8;
  {
    // Serialized execution (one worker, 8 slabs): per-slab times are then
    // true work measurements rather than oversubscription artifacts.
    par::ThreadPool pool(1);
    mt::MultisetOptions o;
    o.slabs = slabs;
    mt::Alg2Stats st;
    mt::multiset_clip(d1, d2, geom::BoolOp::kIntersection, pool, o, &st);

    std::printf("%6s %12s %14s %14s\n", "slab", "time (ms)", "input edges",
                "out verts");
    double total = 0.0;
    for (std::size_t i = 0; i < st.slabs.size(); ++i) {
      const auto& s = st.slabs[i];
      std::printf("%6zu %12.3f %14lld %14lld\n", i, s.seconds * 1e3,
                  static_cast<long long>(s.input_edges),
                  static_cast<long long>(s.output_vertices));
      total += s.seconds;
      report.row("slabs");
      report.cell("slab", static_cast<long long>(i));
      report.cell("clip_ms", s.seconds * 1e3);
      report.cell("input_edges", static_cast<long long>(s.input_edges));
      report.cell("output_vertices",
                  static_cast<long long>(s.output_vertices));
      report.cell("peak_arena_bytes",
                  static_cast<long long>(s.peak_arena_bytes));
    }
    report.field("slab_imbalance", st.load_imbalance());
    report.row("phases");
    report.cell("name", std::string("partition"));
    report.cell("seconds", st.phases.partition);
    report.row("phases");
    report.cell("name", std::string("clip"));
    report.cell("seconds", st.phases.clip);
    report.row("phases");
    report.cell("name", std::string("merge"));
    report.cell("seconds", st.phases.merge);
    std::printf("\nload imbalance (max/mean): %.2f — 1.0 would be perfectly "
                "balanced; the paper attributes Intersect(1,2)'s limited "
                "3.4x speedup to exactly this skew.\n",
                st.load_imbalance());
    std::printf("sum of slab clip times: %.3f ms\n", total * 1e3);
  }

  bench::header(
      "Fig. 11 (b) — work-stealing slab scheduler on a skewed workload",
      "paper Fig. 11, plus the scheduler this repo adds on top");

  const SkewPair w = make_skewed_workload();
  const unsigned p = 4;
  par::ThreadPool pool(p);
  // The polygram is self-intersecting, which only the Vatti rectangle
  // clipper supports (the very limitation of GH the paper discusses).
  const auto run = [&](par::ThreadPool& on, unsigned fixed_slabs,
                       unsigned oversubscribe, mt::Alg2Stats* st) {
    mt::Alg2Options o;
    o.slabs = fixed_slabs;
    o.oversubscribe = oversubscribe;
    o.rect_method = seq::RectClipMethod::kVatti;
    return mt::slab_clip(w.subject, w.clip, geom::BoolOp::kIntersection, on,
                         o, st);
  };

  mt::Alg2Stats st_static, st_oversub;
  run(pool, /*fixed_slabs=*/p, /*oversubscribe=*/1, &st_static);
  const geom::PolygonSet out =
      run(pool, /*fixed_slabs=*/0, /*oversubscribe=*/4, &st_oversub);

  print_workers("static decomposition: slabs = p = 4 (paper's Algorithm 2)",
                st_static);
  print_workers("adaptive over-partitioning: oversubscribe = 4 (16 slabs)",
                st_oversub);

  const auto worker_rows = [&report](const char* array,
                                     const mt::Alg2Stats& st) {
    for (std::size_t i = 0; i < st.workers.size(); ++i) {
      const auto& w = st.workers[i];
      report.row(array);
      report.cell("worker", i + 1 == st.workers.size()
                                ? std::string("caller")
                                : std::to_string(i));
      report.cell("slab_jobs", static_cast<long long>(w.slab_jobs));
      report.cell("busy_ms", w.busy_seconds * 1e3);
      report.cell("steals", static_cast<long long>(w.steals));
      report.cell("tasks_stolen", static_cast<long long>(w.tasks_stolen));
      report.cell("idle_ms", w.idle_seconds * 1e3);
    }
  };
  worker_rows("workers_static", st_static);
  worker_rows("workers_oversubscribed", st_oversub);
  report.field("worker_imbalance_static", st_static.worker_imbalance());
  report.field("worker_imbalance_oversubscribed",
               st_oversub.worker_imbalance());

  std::printf("\nworker imbalance %0.2f -> %0.2f with oversubscribe=4 "
              "(lower is better; the per-slab skew itself is unchanged,\n"
              "idle workers now steal queued slab jobs instead of waiting "
              "out the heaviest slab).\n",
              st_static.worker_imbalance(), st_oversub.worker_imbalance());

  // Scheduling must never leak into the output: the same decomposition on
  // one worker (no concurrency, no steals) must match byte for byte.
  par::ThreadPool serial(1);
  // Same decomposition (p * 4 = 16 slabs, explicitly) on one worker: no
  // concurrency, no steals — stealing is the only variable left.
  const geom::PolygonSet ref = run(serial, /*fixed_slabs=*/p * 4,
                                   /*oversubscribe=*/1, nullptr);
  const bool identical = bit_identical(out, ref);
  std::printf("bit-identical across schedules: %s\n",
              identical ? "yes" : "NO — BUG");
  report.field("bit_identical", static_cast<long long>(identical));
  if (json) report.write_file(json);
  return identical ? 0 : 1;
}
