// Microbenchmark + CI gate for the request-governance layer (DESIGN.md §11).
//
// The gated quantity is the *per-scanbeam checkpoint cost* inside the Vatti
// sweep — the only governance site on a per-element hot path (phase
// boundaries and slab entries are O(slabs), noise). It is measured on the
// sequential sweep (seq::vatti_clip), where scheduler jitter cannot pollute
// the signal, twice per rep:
//   * baseline — no token installed (each checkpoint is one thread-local
//     null test);
//   * governed — a gov::ScopedToken with a generous deadline and memory
//     budget installed, so every per-beam checkpoint does its full work
//     (cancel + budget flags every beam, amortized clock reads, quantized
//     output-growth charges) but never trips.
//
// The gate statistic is the ratio of *minimum* CPU times over the reps:
// co-tenant interference only ever adds CPU cycles (cache eviction,
// frequency dips), so the minimum of N runs converges on the undisturbed
// cost from above — the one statistic that stays stable on a shared host
// where even medians of CPU time wander by several percent.
//
// Gates (process exits nonzero on violation — CI runs this binary):
//   * byte-identical output between baseline and governed runs per op,
//     sequential and parallel;
//   * min-CPU overhead <= 1% by default (override with
//     PSCLIP_GOVERNANCE_GATE=<fraction>, e.g. 0.05 for a noisy CI host).
//
// The parallel mt::slab_clip overlay is also measured and reported
// (rows "slab_parallel") for visibility, but not gated: its run-to-run
// scheduler variance on shared CI hosts is an order of magnitude above the
// 1% bar, so gating it would only measure the host.
//
// With --json <path>, the measurements are mirrored into a
// schema_version-stamped report (BENCH_governance.json).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "data/synthetic.hpp"
#include "geom/polygon.hpp"
#include "mt/algorithm2.hpp"
#include "parallel/cancel.hpp"
#include "parallel/timing.hpp"
#include "seq/vatti.hpp"

namespace {

bool identical(const psclip::geom::PolygonSet& a,
               const psclip::geom::PolygonSet& b) {
  if (a.num_contours() != b.num_contours()) return false;
  for (std::size_t i = 0; i < a.contours.size(); ++i) {
    if (a.contours[i].pts.size() != b.contours[i].pts.size()) return false;
    for (std::size_t j = 0; j < a.contours[i].pts.size(); ++j)
      if (a.contours[i].pts[j].x != b.contours[i].pts[j].x ||
          a.contours[i].pts[j].y != b.contours[i].pts[j].y)
        return false;
  }
  return true;
}

/// Maximum relative slowdown of the governed run the gate accepts. The
/// acceptance bar is 0.01 (1%); PSCLIP_GOVERNANCE_GATE overrides it.
double max_overhead() {
  if (const char* s = std::getenv("PSCLIP_GOVERNANCE_GATE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 0.01;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double minimum(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psclip;
  bench::header("Governance overhead — enabled-but-untriggered vs none",
                "DESIGN.md §11 request governance");

  constexpr int kContours = 1000;
  constexpr int kReps = 51;  // paired timings; short runs, min converges
  const geom::PolygonSet subject =
      data::polygon_field(9001, kContours, 100.0, 12);
  const geom::PolygonSet clip = data::polygon_field(9002, kContours, 100.0, 10);
  const auto total_verts =
      static_cast<long long>(subject.num_vertices() + clip.num_vertices());
  std::printf("workload: 2 x polygon_field(%d contours), %lld vertices\n",
              kContours, total_verts);
  std::printf("gate: governed min-CPU <= %.1f%% over baseline min-CPU\n\n",
              max_overhead() * 100.0);

  par::ThreadPool& pool = par::default_pool();

  // Generous-but-real limits: the run must stay far from both (a trip would
  // change what is being measured), while every checkpoint still reads the
  // clock stride and every charge still hits the budget atomics.
  auto governed_token = [] {
    par::CancelToken t = par::CancelToken::with_deadline(
        par::Deadline::in_ms(60 * 60 * 1000));  // 1 hour
    t.set_budget(std::make_shared<par::ResourceBudget>(1ull << 40));  // 1 TiB
    return t;
  };
  auto governed_opts = [&] {
    mt::Alg2Options o;
    o.cancel = governed_token();
    return o;
  };

  bench::JsonReport report;
  report.field("bench", std::string("governance_overhead"));
  report.field("workload", std::string("polygon_field x2"));
  report.field("contours_per_layer", static_cast<long long>(kContours));
  report.field("total_vertices", total_verts);
  report.field("pool_threads", static_cast<long long>(pool.size()));
  report.field("reps", static_cast<long long>(kReps));
  report.field("gate_max_overhead", max_overhead());

  // ---- Gated section: per-scanbeam checkpoint cost, sequential sweep. ----
  std::printf("sequential sweep (gated):\n");
  std::printf("%12s | %13s %13s %9s\n", "op", "baseline (ms)", "governed (ms)",
              "overhead");
  bool gate_ok = true;
  double worst_overhead = 0.0;
  for (const geom::BoolOp op :
       {geom::BoolOp::kUnion, geom::BoolOp::kIntersection}) {
    // Scratch reused across runs, as a worker arena would be; the token is
    // created once and installed/removed around each governed run.
    seq::VattiScratch scratch;
    const par::CancelToken tok = governed_token();
    geom::PolygonSet out_base, out_gov;
    // Warm-up: grow the scratch and fault in the inputs so neither timed
    // side pays first-touch costs.
    out_base = seq::vatti_clip(subject, clip, op, nullptr, &scratch);
    {
      par::gov::ScopedToken scope(tok);
      out_gov = seq::vatti_clip(subject, clip, op, nullptr, &scratch);
    }
    if (!identical(out_base, out_gov)) {
      std::fprintf(stderr,
                   "FAIL: governed sweep output differs from baseline "
                   "(op %s)\n",
                   geom::to_string(op));
      return 1;
    }

    // Thread-CPU clock, not wall: a timeshared host deschedules the sweep
    // at random, and those gaps would swamp a 1% signal (the same artifact
    // schema 3 fixed in the phase timings). CPU time charges only cycles
    // the sweep actually ran — exactly where checkpoint cost lands.
    std::vector<double> base_s, gov_s;
    for (int rep = 0; rep < kReps; ++rep) {
      {
        par::ThreadCpuTimer t;
        out_base = seq::vatti_clip(subject, clip, op, nullptr, &scratch);
        base_s.push_back(t.seconds());
      }
      {
        par::gov::ScopedToken scope(tok);
        par::ThreadCpuTimer t;
        out_gov = seq::vatti_clip(subject, clip, op, nullptr, &scratch);
        gov_s.push_back(t.seconds());
      }
    }
    const double min_base = minimum(base_s);
    const double min_gov = minimum(gov_s);
    const double overhead = min_base > 0 ? min_gov / min_base - 1.0 : 0.0;
    worst_overhead = std::max(worst_overhead, overhead);
    if (overhead > max_overhead()) gate_ok = false;
    std::printf("%12s | %13.3f %13.3f %8.2f%%\n", geom::to_string(op),
                min_base * 1e3, min_gov * 1e3, overhead * 100.0);

    report.row("seq_sweep");
    report.cell("op", std::string(geom::to_string(op)));
    report.cell("baseline_min_cpu_ms", min_base * 1e3);
    report.cell("governed_min_cpu_ms", min_gov * 1e3);
    report.cell("baseline_median_cpu_ms", median(base_s) * 1e3);
    report.cell("governed_median_cpu_ms", median(gov_s) * 1e3);
    report.cell("overhead", overhead);
  }

  // ---- Informational section: the full parallel overlay. ----
  std::printf("\nparallel slab_clip (informational, not gated):\n");
  std::printf("%12s | %13s %13s %9s\n", "op", "baseline (ms)", "governed (ms)",
              "overhead");
  for (const geom::BoolOp op :
       {geom::BoolOp::kUnion, geom::BoolOp::kIntersection}) {
    geom::PolygonSet out_base, out_gov;
    out_base = mt::slab_clip(subject, clip, op, pool);
    {
      const mt::Alg2Options opts = governed_opts();
      out_gov = mt::slab_clip(subject, clip, op, pool, opts);
    }
    if (!identical(out_base, out_gov)) {
      std::fprintf(stderr,
                   "FAIL: governed slab_clip output differs from baseline "
                   "(op %s)\n",
                   geom::to_string(op));
      return 1;
    }
    std::vector<double> base_s, gov_s, ratios;
    for (int rep = 0; rep < 3; ++rep) {
      double b, g;
      {
        par::WallTimer t;
        out_base = mt::slab_clip(subject, clip, op, pool);
        b = t.seconds();
      }
      {
        const mt::Alg2Options opts = governed_opts();
        par::WallTimer t;
        out_gov = mt::slab_clip(subject, clip, op, pool, opts);
        g = t.seconds();
      }
      base_s.push_back(b);
      gov_s.push_back(g);
      if (b > 0) ratios.push_back(g / b);
    }
    const double med_base = median(base_s);
    const double med_gov = median(gov_s);
    const double overhead = ratios.empty() ? 0.0 : median(ratios) - 1.0;
    std::printf("%12s | %13.3f %13.3f %8.2f%%\n", geom::to_string(op),
                med_base * 1e3, med_gov * 1e3, overhead * 100.0);

    report.row("slab_parallel");
    report.cell("op", std::string(geom::to_string(op)));
    report.cell("baseline_ms", med_base * 1e3);
    report.cell("governed_ms", med_gov * 1e3);
    report.cell("overhead", overhead);
  }
  report.field("worst_overhead", worst_overhead);
  report.field("gate_ok", static_cast<long long>(gate_ok ? 1 : 0));

  if (const char* path = bench::json_path(argc, argv)) {
    if (!report.write_file(path)) return 1;
    std::printf("\nJSON report written to %s\n", path);
  }

  if (!gate_ok) {
    std::fprintf(stderr,
                 "FAIL: governance overhead %.2f%% exceeds the %.2f%% gate "
                 "(PSCLIP_GOVERNANCE_GATE overrides)\n",
                 worst_overhead * 100.0, max_overhead() * 100.0);
    return 1;
  }
  std::printf("\ngate OK: worst overhead %.2f%% <= %.2f%%\n",
              worst_overhead * 100.0, max_overhead() * 100.0);
  return 0;
}
