// Serving-layer throughput bench + CI gate (DESIGN.md §12).
//
// Replays a mixed request workload through svc::ClipService from 1, 4 and
// 16 concurrent clients, with the prepared-contour cache on and off:
//   * small pairs under kAuto (resolve to the sequential clipper — the
//     common "many cheap requests" serving case, parallel only across
//     clients), and
//   * medium pairs forced onto the slab engine (sharing the service's pool
//     and hitting the prepared cache on every replay).
// Each configuration reports requests/sec and the p50/p99 submit latency,
// mirrored into BENCH_service.json with --json.
//
// Gates (process exits nonzero on violation — CI runs this binary):
//   * every unique request's service output is byte-identical to a direct
//     psclip::clip call with the same engine and pool (checked untimed);
//   * on hosts with >= 8 hardware threads, 16-client throughput (cache on)
//     >= kMinSpeedup x the 1-client throughput — concurrency must buy
//     wall-clock, not just interleave it. Override with
//     PSCLIP_SERVICE_GATE=<factor> for noisy hosts; skipped below 8
//     threads where the concurrency headroom doesn't exist;
//   * cache-on runs actually hit the cache (hits > 0).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "data/synthetic.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/timing.hpp"
#include "psclip.hpp"
#include "svc/clip_service.hpp"

namespace {

using psclip::Engine;
using psclip::geom::BoolOp;
using psclip::geom::PolygonSet;

bool identical(const PolygonSet& a, const PolygonSet& b) {
  if (a.contours.size() != b.contours.size()) return false;
  for (std::size_t i = 0; i < a.contours.size(); ++i) {
    if (a.contours[i].hole != b.contours[i].hole ||
        a.contours[i].pts.size() != b.contours[i].pts.size())
      return false;
    for (std::size_t j = 0; j < a.contours[i].pts.size(); ++j)
      if (a.contours[i].pts[j].x != b.contours[i].pts[j].x ||
          a.contours[i].pts[j].y != b.contours[i].pts[j].y)
        return false;
  }
  return true;
}

/// Minimum 16-client vs 1-client throughput ratio the gate requires on
/// hosts with >= 8 hardware threads. PSCLIP_SERVICE_GATE overrides.
double min_speedup() {
  if (const char* s = std::getenv("PSCLIP_SERVICE_GATE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 1.5;
}

struct RequestSpec {
  PolygonSet subject, clip;
  BoolOp op = BoolOp::kIntersection;
  Engine engine = Engine::kAuto;
};

struct RunResult {
  double rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t hits = 0, misses = 0, evictions = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace psclip;
  bench::header("Service throughput — concurrent clients over one pool",
                "serving-layer gate; DESIGN.md §12");

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  par::ThreadPool pool(hw);

  // Mixed workload: 16 small kAuto pairs + 8 medium kSlab pairs, replayed
  // round-robin. The slab pairs re-present the same contours on every lap,
  // which is exactly the reuse the prepared cache exists for.
  std::vector<RequestSpec> specs;
  const BoolOp ops[4] = {BoolOp::kIntersection, BoolOp::kUnion,
                         BoolOp::kDifference, BoolOp::kXor};
  for (int i = 0; i < 16; ++i) {
    const auto p = data::synthetic_pair(7000 + i, 120);
    specs.push_back({p.subject, p.clip, ops[i % 4], Engine::kAuto});
  }
  for (int i = 0; i < 8; ++i) {
    const auto p = data::synthetic_pair(8000 + i, 600);
    specs.push_back({p.subject, p.clip, ops[i % 4], Engine::kSlab});
  }
  std::size_t total_verts = 0;
  for (const auto& s : specs)
    total_verts += s.subject.num_vertices() + s.clip.num_vertices();
  std::printf("workload: %zu unique requests (%zu vertices), pool=%u "
              "threads\n\n",
              specs.size(), total_verts, hw);

  // Serial references, and the identity gate every measured configuration
  // is checked against (untimed).
  std::vector<PolygonSet> refs;
  refs.reserve(specs.size());
  for (const auto& s : specs) {
    ClipOptions copts;
    copts.engine = s.engine;
    copts.pool = &pool;
    refs.push_back(clip(s.subject, s.clip, s.op, copts));
  }

  bench::JsonReport report;
  report.field("bench", std::string("service_throughput"));
  report.field("workload",
               std::string("16 x synthetic_pair(120) kAuto + "
                           "8 x synthetic_pair(600) kSlab"));
  report.field("unique_requests", static_cast<long long>(specs.size()));
  report.field("total_vertices", static_cast<long long>(total_verts));
  report.field("pool_threads", static_cast<long long>(hw));
  report.field("gate_min_speedup", min_speedup());

  constexpr std::size_t kTotalRequests = 1152;  // divisible by 1, 4, 16
  bool gate_ok = true;
  double rps_1_cache = 0.0, rps_16_cache = 0.0;

  std::printf("%8s %6s | %10s %10s %10s | %8s %8s %8s\n", "clients", "cache",
              "req/s", "p50 (ms)", "p99 (ms)", "hits", "misses", "evict");

  for (const bool cache_on : {true, false}) {
    for (const int clients : {1, 4, 16}) {
      svc::ServiceOptions sopts;
      sopts.enable_cache = cache_on;
      sopts.max_queued = 1024;
      svc::ClipService service(pool, sopts);

      // Warm-up lap (untimed): touches every request once, populates the
      // cache, and runs the identity gate.
      for (std::size_t i = 0; i < specs.size(); ++i) {
        svc::ClipRequest req;
        req.subject = specs[i].subject;
        req.clip = specs[i].clip;
        req.op = specs[i].op;
        req.engine = specs[i].engine;
        const svc::ClipResult res = service.submit(req);
        if (!identical(res.output, refs[i])) {
          std::fprintf(stderr,
                       "FAIL: service output diverged from the serial "
                       "reference (request %zu, clients=%d, cache=%d)\n",
                       i, clients, cache_on);
          gate_ok = false;
        }
      }

      const std::size_t per_client =
          kTotalRequests / static_cast<std::size_t>(clients);
      std::vector<double> latencies(kTotalRequests);
      std::atomic<std::uint64_t> failures{0};
      par::WallTimer wall;
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(clients));
      for (int t = 0; t < clients; ++t) {
        threads.emplace_back([&, t] {
          for (std::size_t k = 0; k < per_client; ++k) {
            const std::size_t i =
                (static_cast<std::size_t>(t) * 7 + k) % specs.size();
            svc::ClipRequest req;
            req.subject = specs[i].subject;
            req.clip = specs[i].clip;
            req.op = specs[i].op;
            req.engine = specs[i].engine;
            par::WallTimer timer;
            try {
              (void)service.submit(req);
            } catch (const Error&) {
              failures.fetch_add(1, std::memory_order_relaxed);
            }
            latencies[static_cast<std::size_t>(t) * per_client + k] =
                timer.seconds();
          }
        });
      }
      for (auto& th : threads) th.join();
      const double elapsed = wall.seconds();

      if (failures.load() != 0) {
        std::fprintf(stderr, "FAIL: %llu request(s) errored (clients=%d)\n",
                     static_cast<unsigned long long>(failures.load()),
                     clients);
        gate_ok = false;
      }

      std::sort(latencies.begin(), latencies.end());
      const auto quantile = [&](double q) {
        return latencies[static_cast<std::size_t>(
                   q * static_cast<double>(latencies.size() - 1))] *
               1e3;
      };
      RunResult r;
      r.rps = elapsed > 0 ? static_cast<double>(kTotalRequests) / elapsed
                          : 0.0;
      r.p50_ms = quantile(0.50);
      r.p99_ms = quantile(0.99);
      if (const auto* cache = service.cache()) {
        r.hits = cache->hits();
        r.misses = cache->misses();
        r.evictions = cache->evictions();
        if (r.hits == 0) {
          std::fprintf(stderr,
                       "FAIL: cache-on run recorded zero hits "
                       "(clients=%d)\n",
                       clients);
          gate_ok = false;
        }
      }

      std::printf("%8d %6s | %10.0f %10.3f %10.3f | %8llu %8llu %8llu\n",
                  clients, cache_on ? "on" : "off", r.rps, r.p50_ms, r.p99_ms,
                  static_cast<unsigned long long>(r.hits),
                  static_cast<unsigned long long>(r.misses),
                  static_cast<unsigned long long>(r.evictions));

      report.row("throughput");
      report.cell("clients", static_cast<long long>(clients));
      report.cell("cache", std::string(cache_on ? "on" : "off"));
      report.cell("requests", static_cast<long long>(kTotalRequests));
      report.cell("rps", r.rps);
      report.cell("p50_ms", r.p50_ms);
      report.cell("p99_ms", r.p99_ms);
      report.cell("cache_hits", static_cast<long long>(r.hits));
      report.cell("cache_misses", static_cast<long long>(r.misses));
      report.cell("cache_evictions", static_cast<long long>(r.evictions));

      if (cache_on && clients == 1) rps_1_cache = r.rps;
      if (cache_on && clients == 16) rps_16_cache = r.rps;
    }
  }

  const double speedup = rps_1_cache > 0 ? rps_16_cache / rps_1_cache : 0.0;
  const double need = min_speedup();
  std::printf("\n16-client vs 1-client throughput (cache on): %.2fx "
              "(gate %.2fx, %s)\n",
              speedup, need, hw >= 8 ? "enforced" : "skipped: < 8 threads");
  report.field("speedup_16_vs_1", speedup);
  report.field("gate_enforced", static_cast<long long>(hw >= 8 ? 1 : 0));
  if (hw >= 8 && speedup < need) {
    std::fprintf(stderr,
                 "FAIL: 16-client throughput %.2fx the serial rate < "
                 "required %.2fx\n",
                 speedup, need);
    gate_ok = false;
  }
  report.field("gate_ok", static_cast<long long>(gate_ok ? 1 : 0));

  if (const char* path = bench::json_path(argc, argv)) {
    if (!report.write_file(path)) return 1;
    std::printf("wrote %s\n", path);
  }
  return gate_ok ? 0 : 1;
}
