// Ablation: the sequential clippers head to head — Vatti scanline (the
// paper's GPC role), Martinez–Rueda (independent x-sweep), and
// Greiner–Hormann (simple contours only) — across input sizes. This is
// the "which sequential engine should Algorithm 2 call per slab"
// question; the paper benchmarked GPC vs GH the same way.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "data/synthetic.hpp"
#include "seq/greiner_hormann.hpp"
#include "seq/martinez.hpp"
#include "seq/vatti.hpp"

namespace {

void print_comparison() {
  using namespace psclip;
  bench::header("Ablation — sequential clippers: Vatti vs Martinez vs GH",
                "engine choice for Algorithm 2 Step 6");
  std::printf("%8s | %12s %12s %12s   (INT, ms)\n", "edges", "Vatti",
              "Martinez", "GH");
  for (int edges : {500, 2000, 8000}) {
    const auto pair = data::synthetic_pair(91, edges);
    const double tv = bench::time_median3([&] {
      auto r = seq::vatti_clip(pair.subject, pair.clip,
                               geom::BoolOp::kIntersection);
      benchmark::DoNotOptimize(r);
    });
    const double tm = bench::time_median3([&] {
      auto r = seq::martinez_clip(pair.subject, pair.clip,
                                  geom::BoolOp::kIntersection);
      benchmark::DoNotOptimize(r);
    });
    const double tg = bench::time_median3([&] {
      auto r = seq::greiner_hormann(pair.subject.contours[0],
                                    pair.clip.contours[0],
                                    geom::BoolOp::kIntersection);
      benchmark::DoNotOptimize(r);
    });
    std::printf("%8d | %12.3f %12.3f %12.3f\n", edges, tv * 1e3, tm * 1e3,
                tg * 1e3);
  }
  std::printf("\n(GH is quadratic in its pairwise intersection phase but "
              "has no scanbeam machinery — the trade the paper observed "
              "for small rectangle clips.)\n");
}

void BM_Clipper(benchmark::State& state) {
  using namespace psclip;
  const auto pair =
      data::synthetic_pair(91, static_cast<int>(state.range(0)));
  const int which = static_cast<int>(state.range(1));
  for (auto _ : state) {
    geom::PolygonSet r;
    switch (which) {
      case 0:
        r = seq::vatti_clip(pair.subject, pair.clip,
                            geom::BoolOp::kIntersection);
        break;
      case 1:
        r = seq::martinez_clip(pair.subject, pair.clip,
                               geom::BoolOp::kIntersection);
        break;
      default:
        r = seq::greiner_hormann(pair.subject.contours[0],
                                 pair.clip.contours[0],
                                 geom::BoolOp::kIntersection);
    }
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(which == 0 ? "vatti" : which == 1 ? "martinez" : "gh");
}
BENCHMARK(BM_Clipper)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({1024, 2})
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Args({4096, 2});

}  // namespace

int main(int argc, char** argv) {
  print_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
