// Table I: merging of A_l = {5,6,7,9} and A_r = {1,2,3,4} in one internal
// node of the extended (Cole's) mergesort, with the inversions marked for
// reporting — plus micro-benchmarks of the inversion machinery itself.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "bench_util.hpp"
#include "parallel/inversions.hpp"

namespace {

void print_table1() {
  using psclip::par::merge_with_inversions;
  psclip::bench::header("Table I — extended-mergesort merge with inversion marking",
                        "paper Table I");
  const std::vector<std::int32_t> left{5, 6, 7, 9};
  const std::vector<std::int32_t> right{1, 2, 3, 4};
  const auto tr = merge_with_inversions(left, right);
  std::printf("A_l = {5,6,7,9}   A_r = {1,2,3,4}\n");
  std::printf("merged: ");
  for (auto v : tr.merged) std::printf("%d ", v);
  std::printf("\ninversions marked (%zu):", tr.inversions.size());
  for (const auto& [a, b] : tr.inversions) std::printf(" (%d,%d)", a, b);
  std::printf("\n");
}

std::vector<std::int32_t> random_perm(std::size_t n, std::uint64_t seed) {
  std::vector<std::int32_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::int32_t>(i);
  std::mt19937_64 rng(seed);
  std::shuffle(v.begin(), v.end(), rng);
  return v;
}

void BM_CountInversions(benchmark::State& state) {
  const auto v = random_perm(static_cast<std::size_t>(state.range(0)), 7);
  std::int64_t k = 0;
  for (auto _ : state) {
    k = psclip::par::count_inversions(v);
    benchmark::DoNotOptimize(k);
  }
  state.counters["inversions"] = static_cast<double>(k);
}
BENCHMARK(BM_CountInversions)->Range(1 << 8, 1 << 16);

void BM_ReportInversions(benchmark::State& state) {
  // Nearly sorted input: output-sensitive report stays cheap even for
  // large n (the paper's whole point about output sensitivity).
  std::vector<std::int32_t> v(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = static_cast<std::int32_t>(i);
  std::mt19937_64 rng(3);
  for (int s = 0; s < state.range(1); ++s) {
    const auto i = rng() % (v.size() - 1);
    std::swap(v[i], v[i + 1]);
  }
  std::size_t pairs = 0;
  for (auto _ : state) {
    auto out = psclip::par::report_inversions(v);
    pairs = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}
BENCHMARK(BM_ReportInversions)
    ->Args({1 << 12, 16})
    ->Args({1 << 12, 1024})
    ->Args({1 << 16, 16})
    ->Args({1 << 16, 1024});

void BM_ReportInversionsParallel(benchmark::State& state) {
  static psclip::par::ThreadPool pool;
  const auto v = random_perm(static_cast<std::size_t>(state.range(0)), 11);
  for (auto _ : state) {
    auto out = psclip::par::report_inversions(pool, v);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ReportInversionsParallel)->Range(1 << 10, 1 << 14);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
