// Fig. 9: execution time of Algorithm 2's phases — partitioning
// (Steps 4-5), clipping (Step 6) and merging (Step 8) — for two datasets
// as the thread count grows. The paper observes clipping dominating and
// partitioning growing slightly with more threads. With --json <path>,
// the same table is mirrored to a machine-readable report.

#include <cstdio>

#include "bench_util.hpp"
#include "data/synthetic.hpp"
#include "mt/algorithm2.hpp"

int main(int argc, char** argv) {
  using namespace psclip;
  bench::header("Fig. 9 — Algorithm 2 phase breakdown (partition/clip/merge)",
                "paper Fig. 9");

  struct Ds {
    const char* name;
    int edges;
  };
  const Ds sets[] = {{"I (8k-edge pair)", 8000}, {"II (24k-edge pair)", 24000}};

  bench::JsonReport report;
  report.field("bench", std::string("fig9_phase_breakdown"));

  for (const auto& ds : sets) {
    const auto pair = data::synthetic_pair(31, ds.edges);
    std::printf("\ndataset %s:\n", ds.name);
    std::printf("%8s %14s %12s %12s %12s\n", "threads", "partition(ms)",
                "clip(ms)", "merge(ms)", "total(ms)");
    for (unsigned t : bench::thread_ladder()) {
      // Phases are measured on serialized execution (one worker, t slabs):
      // concurrent slabs on an oversubscribed host inflate each other's
      // wall time and corrupt the attribution. The paper's Fig. 9 shows
      // per-phase *work*, which this measures directly.
      par::ThreadPool pool(1);
      mt::Alg2Options o;
      o.slabs = t;
      mt::Alg2Stats st;
      mt::slab_clip(pair.subject, pair.clip, geom::BoolOp::kIntersection,
                    pool, o, &st);
      std::printf("%8u %14.3f %12.3f %12.3f %12.3f\n", t,
                  st.phases.partition * 1e3, st.phases.clip * 1e3,
                  st.phases.merge * 1e3, st.phases.total() * 1e3);
      report.row("phases");
      report.cell("dataset", std::string(ds.name));
      report.cell("slabs", static_cast<long long>(t));
      report.cell("partition_ms", st.phases.partition * 1e3);
      report.cell("clip_ms", st.phases.clip * 1e3);
      report.cell("merge_ms", st.phases.merge * 1e3);
      report.cell("total_ms", st.phases.total() * 1e3);
    }
  }

  if (const char* path = bench::json_path(argc, argv)) {
    if (!report.write_file(path)) return 1;
    std::printf("\nwrote %s\n", path);
  }
  return 0;
}
