// Ablation: the two partitioning layers.
//
// Section 1 — Algorithm 1 Step 2 edge partitioning: the paper's cover-list
// segment tree (two-phase count/report, §III-E) versus direct per-edge
// binning. Both are output-sensitive in k'; the segment tree bounds the
// *per-item* work by O(log m) while direct binning pays O(beams spanned).
//
// Section 2 — Algorithm 2 Steps 4-5 slab partitioning: the slab-overlap
// contour index (each slab rect-clips only the contours whose y-interval
// overlaps it) versus the paper's broadcast formulation (every slab scans
// both whole inputs, O(p·n)). `touched` counts input vertices the partition
// step read — a deterministic, machine-noise-free measure of partition
// work. With --json <path>, section 2 is mirrored to a machine-readable
// report; the process exits nonzero if the index ever reads more input
// than the broadcast scan at p >= 4 slabs or if the two paths disagree on
// the output, which is what CI gates on.

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "core/scanbeam.hpp"
#include "data/synthetic.hpp"
#include "geom/perturb.hpp"
#include "mt/algorithm2.hpp"

namespace {

bool identical(const psclip::geom::PolygonSet& a,
               const psclip::geom::PolygonSet& b) {
  if (a.num_contours() != b.num_contours()) return false;
  for (std::size_t i = 0; i < a.contours.size(); ++i) {
    if (a.contours[i].pts.size() != b.contours[i].pts.size()) return false;
    for (std::size_t j = 0; j < a.contours[i].pts.size(); ++j)
      if (a.contours[i].pts[j].x != b.contours[i].pts[j].x ||
          a.contours[i].pts[j].y != b.contours[i].pts[j].y)
        return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psclip;
  bench::header("Ablation — Step 2 partitioning: segment tree vs direct binning",
                "paper §III-E Step 2");

  par::ThreadPool pool;
  std::printf("%8s %8s %10s | %14s %14s\n", "edges", "beams", "k'",
              "segtree (ms)", "direct (ms)");
  for (int edges : {1000, 4000, 16000, 64000}) {
    auto pair = data::synthetic_pair(61, edges);
    geom::PolygonSet s = geom::cleaned(pair.subject);
    geom::PolygonSet c = geom::cleaned(pair.clip);
    geom::remove_horizontals(s);
    geom::remove_horizontals(c);
    const seq::BoundTable bt = seq::build_bounds(s, c);

    core::ScanbeamPartition part;
    const double t_tree = bench::time_median3(
        [&] { part = core::partition_scanbeams(pool, bt); });
    const double t_direct = bench::time_median3(
        [&] { auto p = core::partition_scanbeams_direct(pool, bt); (void)p; });
    std::printf("%8zu %8zu %10lld | %14.3f %14.3f\n", bt.num_edges(),
                part.num_beams(),
                static_cast<long long>(part.k_prime(bt.num_edges())),
                t_tree * 1e3, t_direct * 1e3);
  }

  bench::header(
      "Ablation — Alg 2 slab partition: contour interval index vs broadcast",
      "paper Alg 2 Steps 4-5, made output-sensitive");

  // Multi-contour overlay: two polygon-layer fields, the workload where
  // per-slab contour selection matters (a single huge contour overlaps
  // every slab and the index degenerates to the broadcast, by design).
  const int field_count =
      std::max(40, static_cast<int>(4000 * bench::dataset_scale()));
  const geom::PolygonSet subject =
      data::polygon_field(9001, field_count, 100.0, 12);
  const geom::PolygonSet clip =
      data::polygon_field(9002, field_count, 100.0, 10);
  const auto total_verts =
      static_cast<long long>(subject.num_vertices() + clip.num_vertices());
  std::printf("workload: 2 x polygon_field(%d contours), %lld vertices\n\n",
              field_count, total_verts);
  std::printf("%6s | %14s %14s %14s | %12s %12s %12s\n", "slabs",
              "touched(fus)", "touched(idx)", "touched(bcast)", "fused (ms)",
              "idx (ms)", "bcast (ms)");

  bench::JsonReport report;
  report.field("bench", std::string("ablation_partition"));
  report.field("workload", std::string("polygon_field x2"));
  report.field("contours_per_layer", static_cast<long long>(field_count));
  report.field("total_vertices", total_verts);
  report.field("pool_threads", static_cast<long long>(pool.size()));

  bool gate_ok = true;
  for (const unsigned slabs : {1u, 4u, 8u, 16u}) {
    mt::Alg2Options of, oi, ob;
    of.slabs = oi.slabs = ob.slabs = slabs;
    of.partition = mt::Alg2Partition::kFused;
    oi.partition = mt::Alg2Partition::kIndexed;
    ob.partition = mt::Alg2Partition::kBroadcast;

    mt::Alg2Stats sf, si, sb;
    geom::PolygonSet rf, ri, rb;
    const double t_fused = bench::time_median3([&] {
      rf = mt::slab_clip(subject, clip, geom::BoolOp::kUnion, pool, of, &sf);
    });
    const double t_idx = bench::time_median3([&] {
      ri = mt::slab_clip(subject, clip, geom::BoolOp::kUnion, pool, oi, &si);
    });
    const double t_bcast = bench::time_median3([&] {
      rb = mt::slab_clip(subject, clip, geom::BoolOp::kUnion, pool, ob, &sb);
    });

    long long touched_fused = 0, touched_idx = 0, touched_bcast = 0;
    for (const auto& sl : sf.slabs) touched_fused += sl.touched_edges;
    for (const auto& sl : si.slabs) touched_idx += sl.touched_edges;
    for (const auto& sl : sb.slabs) touched_bcast += sl.touched_edges;
    const double ratio =
        touched_bcast > 0
            ? static_cast<double>(touched_idx) / static_cast<double>(touched_bcast)
            : 1.0;
    std::printf("%6u | %14lld %14lld %14lld | %12.3f %12.3f %12.3f\n", slabs,
                touched_fused, touched_idx, touched_bcast, t_fused * 1e3,
                t_idx * 1e3, t_bcast * 1e3);

    report.row("slab_partition");
    report.cell("slabs", static_cast<long long>(slabs));
    report.cell("touched_fused", touched_fused);
    report.cell("touched_indexed", touched_idx);
    report.cell("touched_broadcast", touched_bcast);
    report.cell("touched_ratio", ratio);
    report.cell("fused_ms", t_fused * 1e3);
    report.cell("indexed_ms", t_idx * 1e3);
    report.cell("broadcast_ms", t_bcast * 1e3);
    // Peak scratch-arena bytes over the run's slabs (fused path): the
    // high-water mark the request memory budget would charge (schema 4).
    long long peak_arena = 0;
    for (const auto& sl : sf.slabs)
      peak_arena = std::max(peak_arena,
                            static_cast<long long>(sl.peak_arena_bytes));
    report.cell("peak_arena_bytes", peak_arena);
    // Phase breakdown of each path (from the instrumented Alg2Stats of the
    // last of the three timed runs). Wall = calling-thread section times
    // (sum ≈ the run's elapsed time); cpu = thread-CPU-clock phase time
    // summed across workers (clip_cpu can approach clip_wall × cores).
    // Schema 1 had one column mixing both units; schema 2 filled the cpu
    // side from wall timers inside the tasks.
    report.cell("fused_partition_wall_ms", sf.phases.partition * 1e3);
    report.cell("fused_clip_wall_ms", sf.phases.clip * 1e3);
    report.cell("fused_merge_wall_ms", sf.phases.merge * 1e3);
    report.cell("fused_partition_cpu_ms", sf.phases.partition_cpu * 1e3);
    report.cell("fused_clip_cpu_ms", sf.phases.clip_cpu * 1e3);
    report.cell("fused_merge_cpu_ms", sf.phases.merge_cpu * 1e3);
    report.cell("indexed_partition_wall_ms", si.phases.partition * 1e3);
    report.cell("indexed_clip_wall_ms", si.phases.clip * 1e3);
    report.cell("indexed_merge_wall_ms", si.phases.merge * 1e3);
    report.cell("indexed_partition_cpu_ms", si.phases.partition_cpu * 1e3);
    report.cell("indexed_clip_cpu_ms", si.phases.clip_cpu * 1e3);
    report.cell("indexed_merge_cpu_ms", si.phases.merge_cpu * 1e3);
    report.cell("broadcast_partition_wall_ms", sb.phases.partition * 1e3);
    report.cell("broadcast_clip_wall_ms", sb.phases.clip * 1e3);
    report.cell("broadcast_merge_wall_ms", sb.phases.merge * 1e3);
    report.cell("broadcast_partition_cpu_ms", sb.phases.partition_cpu * 1e3);
    report.cell("broadcast_clip_cpu_ms", sb.phases.clip_cpu * 1e3);
    report.cell("broadcast_merge_cpu_ms", sb.phases.merge_cpu * 1e3);

    if (!identical(ri, rb) || !identical(rf, ri)) {
      std::fprintf(stderr,
                   "FAIL: fused/indexed/broadcast outputs differ at %u "
                   "slabs\n",
                   slabs);
      gate_ok = false;
    }
    if (slabs >= 4 && touched_idx > touched_bcast) {
      std::fprintf(stderr,
                   "FAIL: index read more input than broadcast at %u slabs "
                   "(%lld > %lld)\n",
                   slabs, touched_idx, touched_bcast);
      gate_ok = false;
    }
  }
  report.field("gate_ok", static_cast<long long>(gate_ok ? 1 : 0));

  if (const char* path = bench::json_path(argc, argv)) {
    if (!report.write_file(path)) return 1;
    std::printf("\nwrote %s\n", path);
  }
  return gate_ok ? 0 : 1;
}
