// Ablation: Step 2 edge partitioning — the paper's cover-list segment
// tree (two-phase count/report, §III-E) versus direct per-edge binning.
// Both are output-sensitive in k'; the segment tree bounds the *per-item*
// work by O(log m) while direct binning pays O(beams spanned).

#include <cstdio>

#include "bench_util.hpp"
#include "core/scanbeam.hpp"
#include "data/synthetic.hpp"
#include "geom/perturb.hpp"

int main() {
  using namespace psclip;
  bench::header("Ablation — Step 2 partitioning: segment tree vs direct binning",
                "paper §III-E Step 2");

  par::ThreadPool pool;
  std::printf("%8s %8s %10s | %14s %14s\n", "edges", "beams", "k'",
              "segtree (ms)", "direct (ms)");
  for (int edges : {1000, 4000, 16000, 64000}) {
    auto pair = data::synthetic_pair(61, edges);
    geom::PolygonSet s = geom::cleaned(pair.subject);
    geom::PolygonSet c = geom::cleaned(pair.clip);
    geom::remove_horizontals(s);
    geom::remove_horizontals(c);
    const seq::BoundTable bt = seq::build_bounds(s, c);

    core::ScanbeamPartition part;
    const double t_tree = bench::time_median3(
        [&] { part = core::partition_scanbeams(pool, bt); });
    const double t_direct = bench::time_median3(
        [&] { auto p = core::partition_scanbeams_direct(pool, bt); (void)p; });
    std::printf("%8zu %8zu %10lld | %14.3f %14.3f\n", bt.num_edges(),
                part.num_beams(),
                static_cast<long long>(part.k_prime(bt.num_edges())),
                t_tree * 1e3, t_direct * 1e3);
  }
  return 0;
}
