// Fig. 8: scalability of Algorithm 2 for a single pair of synthetic
// polygons versus thread count. The paper reports "more than two fold
// speedup for larger polygons when the number of threads is doubled from
// 1 to 2 and from 2 to 4" — super-linear because slab partitioning also
// shrinks the per-slab problem the sequential clipper sees (cf. Fig. 7).

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "data/synthetic.hpp"
#include "mt/algorithm2.hpp"

int main() {
  using namespace psclip;
  bench::header("Fig. 8 — Algorithm 2 speedup on a pair of synthetic polygons",
                "paper Fig. 8");

  for (int edges : {4000, 16000}) {
    const auto pair = data::synthetic_pair(21, edges);
    std::printf("\npolygon pair with %d edges each:\n", edges);
    std::printf("%8s %8s %12s %10s %12s %12s\n", "threads", "slabs",
                "time (ms)", "speedup", "ideal-spdup", "imbalance");
    double base = 0.0;
    double base_work = 0.0;
    for (unsigned t : bench::thread_ladder()) {
      par::ThreadPool pool(t);
      mt::Alg2Options o;
      o.slabs = t;
      mt::Alg2Stats st;
      const double sec = bench::time_median3([&] {
        auto r = mt::slab_clip(pair.subject, pair.clip,
                               geom::BoolOp::kIntersection, pool, o, &st);
        (void)r;
      });
      // Per-slab load metrics come from a *serialized* run (one worker):
      // concurrent slabs on an oversubscribed host inflate each other's
      // wall time and would corrupt the decomposition statistics.
      par::ThreadPool serial(1);
      mt::slab_clip(pair.subject, pair.clip, geom::BoolOp::kIntersection,
                    serial, o, &st);
      double work = 0.0, mx = 0.0;
      for (const auto& s : st.slabs) {
        work += s.seconds;
        mx = std::max(mx, s.seconds);
      }
      if (base == 0.0) {
        base = sec;
        base_work = work;
      }
      // Ideal speedup relative to the 1-slab clip time: slab partitioning
      // also *shrinks* total work (Fig. 7 super-linearity), so this can
      // exceed the thread count — the paper's ">2x when doubling" effect.
      const double ideal = mx > 0.0 ? base_work / mx : 1.0;
      std::printf("%8u %8u %12.3f %9.2fx %11.2fx %12.2f\n", t, o.slabs,
                  sec * 1e3, base / sec, ideal, st.load_imbalance());
    }
  }
  std::printf("\nNote: wall-clock speedup requires hardware cores; the "
              "slab decomposition and per-slab work reduction are "
              "hardware-independent.\n");
  return 0;
}
