// Table III: description of the (simulated) real-world datasets — polygon
// and edge counts plus the edge-length statistics quoted in §V-B, printed
// for the paper's sizes (spec) and for the scale actually generated.

#include <cstdio>

#include "bench_util.hpp"
#include "data/gis_sim.hpp"

int main() {
  using namespace psclip;
  const double scale = bench::dataset_scale();
  bench::header("Table III — dataset inventory (simulated GIS layers)",
                "paper Table III");
  std::printf("generation scale = %g (PSCLIP_BENCH_SCALE to change)\n\n",
              scale);
  std::printf("%-3s %-26s %10s %12s | %10s %12s %12s %12s\n", "#", "dataset",
              "spec polys", "spec edges", "gen polys", "gen edges",
              "mean len", "sd len");
  for (int i = 1; i <= 4; ++i) {
    const auto& spec = data::table3_specs()[static_cast<std::size_t>(i - 1)];
    const auto layer = data::make_dataset(i, scale);
    const auto st = data::measure(layer);
    std::printf("%-3d %-26s %10d %12lld | %10zu %12zu %12.5f %12.5f\n", i,
                spec.name, spec.polys, static_cast<long long>(spec.edges),
                st.polys, st.edges, st.mean_edge_len, st.sd_edge_len);
  }
  std::printf(
      "\npaper edge-length stats: ds1 mean 0.00415 sd 0.0101; "
      "ds2 mean 0.0282 sd 0.0546\n");
  return 0;
}
