// Microbenchmark + CI gate for the cache-conscious Vatti sweep kernel.
//
// Runs the sequential sweep on the polygon_field x2 overlay (the workload
// where BENCH_partition.json showed the per-slab clip phase is ~95% of
// Algorithm 2 wall time) with both per-beam maintenance strategies:
// SweepKernel::kTuned (flat position index, sorted-beam fast path, batched
// minima insertion, SoA x arrays, merged scanbeam schedule) and
// SweepKernel::kReference (the pre-optimization strategy: per-beam hash-map
// rebuild, per-minimum mid-vector insert, full intersection pass every
// beam, per-entry x copy, sort+unique schedule).
//
// Gates (process exits nonzero on violation — CI runs this binary):
//   * byte-identical output between the two kernels on every op measured;
//   * tuned median >= kMinSpeedup x faster than the reference median
//     (override with PSCLIP_SWEEP_GATE=<factor> for noisy hosts).
//
// With --json <path>, the measurements are mirrored into a
// schema_version-stamped report (committed as BENCH_sweep.json).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.hpp"
#include "data/synthetic.hpp"
#include "geom/polygon.hpp"
#include "seq/vatti.hpp"

namespace {

bool identical(const psclip::geom::PolygonSet& a,
               const psclip::geom::PolygonSet& b) {
  if (a.num_contours() != b.num_contours()) return false;
  for (std::size_t i = 0; i < a.contours.size(); ++i) {
    if (a.contours[i].pts.size() != b.contours[i].pts.size()) return false;
    for (std::size_t j = 0; j < a.contours[i].pts.size(); ++j)
      if (a.contours[i].pts[j].x != b.contours[i].pts[j].x ||
          a.contours[i].pts[j].y != b.contours[i].pts[j].y)
        return false;
  }
  return true;
}

/// Minimum tuned-vs-reference speedup the gate requires. The acceptance
/// bar is 1.15 (15%); PSCLIP_SWEEP_GATE overrides (e.g. a loaded CI host).
double min_speedup() {
  if (const char* s = std::getenv("PSCLIP_SWEEP_GATE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 1.15;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psclip;
  bench::header("Sweep kernel — cache-conscious vs reference maintenance",
                "paper §III-D per-slab cost model; DESIGN.md §9");

  // Fixed workload, independent of PSCLIP_BENCH_SCALE: the gate compares
  // two kernels on the same input, so it needs a stable, sweep-dominated
  // problem size, not the paper's dataset ladder. 4000 contours/layer is
  // the size the committed BENCH_partition.json uses.
  constexpr int kContours = 4000;
  const geom::PolygonSet subject =
      data::polygon_field(9001, kContours, 100.0, 12);
  const geom::PolygonSet clip = data::polygon_field(9002, kContours, 100.0, 10);
  const auto total_verts =
      static_cast<long long>(subject.num_vertices() + clip.num_vertices());
  std::printf("workload: 2 x polygon_field(%d contours), %lld vertices\n\n",
              kContours, total_verts);

  bench::JsonReport report;
  report.field("bench", std::string("sweep_kernel"));
  report.field("workload", std::string("polygon_field x2"));
  report.field("contours_per_layer", static_cast<long long>(kContours));
  report.field("total_vertices", total_verts);
  report.field("gate_min_speedup", min_speedup());

  std::printf("%8s | %12s %12s %8s | %10s %10s %12s\n", "op", "tuned (ms)",
              "ref (ms)", "speedup", "beams", "sorted", "sorted-rate");

  bool gate_ok = true;
  double field_speedup = 0.0;  // the union row, the gate's headline number
  for (const geom::BoolOp op :
       {geom::BoolOp::kUnion, geom::BoolOp::kIntersection}) {
    // Scratch reused across the timed runs of one kernel, as a slab-arena
    // worker would; stats come from a separate untimed run.
    seq::VattiScratch scratch;
    geom::PolygonSet out_tuned, out_ref;
    const double t_tuned = bench::time_median3([&] {
      out_tuned = seq::vatti_clip(subject, clip, op, nullptr, &scratch,
                                  seq::SweepKernel::kTuned);
    });
    const double t_ref = bench::time_median3([&] {
      out_ref = seq::vatti_clip(subject, clip, op, nullptr, &scratch,
                                seq::SweepKernel::kReference);
    });
    seq::VattiStats st;
    (void)seq::vatti_clip(subject, clip, op, &st, &scratch,
                          seq::SweepKernel::kTuned);

    const double speedup = t_tuned > 0 ? t_ref / t_tuned : 0.0;
    const double sorted_rate =
        st.scanbeams > 0
            ? static_cast<double>(st.sorted_beams) /
                  static_cast<double>(st.scanbeams)
            : 0.0;
    std::printf("%8s | %12.3f %12.3f %8.2fx | %10lld %10lld %11.1f%%\n",
                geom::to_string(op), t_tuned * 1e3, t_ref * 1e3, speedup,
                static_cast<long long>(st.scanbeams),
                static_cast<long long>(st.sorted_beams), sorted_rate * 100.0);

    report.row("kernels");
    report.cell("op", std::string(geom::to_string(op)));
    report.cell("tuned_ms", t_tuned * 1e3);
    report.cell("reference_ms", t_ref * 1e3);
    report.cell("speedup", speedup);
    report.cell("scanbeams", static_cast<long long>(st.scanbeams));
    report.cell("sorted_beams", static_cast<long long>(st.sorted_beams));
    report.cell("sorted_beam_rate", sorted_rate);
    report.cell("pos_rebuilds", static_cast<long long>(st.pos_rebuilds));
    report.cell("intersections", static_cast<long long>(st.intersections));
    report.cell("max_aet", static_cast<long long>(st.max_aet));
    report.cell("output_vertices",
                static_cast<long long>(st.output_vertices));

    if (!identical(out_tuned, out_ref)) {
      std::fprintf(stderr, "FAIL: kernel outputs differ for op=%s\n",
                   geom::to_string(op));
      gate_ok = false;
    }
    if (op == geom::BoolOp::kUnion) field_speedup = speedup;
  }

  const double need = min_speedup();
  if (field_speedup < need) {
    std::fprintf(stderr,
                 "FAIL: tuned kernel speedup %.3fx < required %.2fx on "
                 "polygon_field union\n",
                 field_speedup, need);
    gate_ok = false;
  }
  report.field("gate_ok", static_cast<long long>(gate_ok ? 1 : 0));

  if (const char* path = bench::json_path(argc, argv)) {
    if (!report.write_file(path)) return 1;
    std::printf("\nwrote %s\n", path);
  }
  return gate_ok ? 0 : 1;
}
