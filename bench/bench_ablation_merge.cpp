// Ablation: Step 4 merge strategy — the paper's reduction tree (Fig. 6,
// log(m) phases) versus a flat single-phase weld of all shared scanlines.

#include <cstdio>

#include "bench_util.hpp"
#include "core/algorithm1.hpp"
#include "data/synthetic.hpp"

int main() {
  using namespace psclip;
  bench::header("Ablation — partial-polygon merge: reduction tree vs flat weld",
                "paper Fig. 6 (Step 4)");

  par::ThreadPool pool;
  std::printf("%8s %10s | %12s %8s | %12s\n", "edges", "partials",
              "tree (ms)", "phases", "flat (ms)");
  for (int edges : {1000, 4000, 16000}) {
    const auto pair = data::synthetic_pair(51, edges);
    double times[2] = {0, 0};
    core::Alg1Stats stats[2];
    const core::MergeStrategy strategies[2] = {core::MergeStrategy::kTree,
                                               core::MergeStrategy::kFlat};
    for (int i = 0; i < 2; ++i) {
      core::Alg1Options o;
      o.merge = strategies[i];
      times[i] = bench::time_median3([&] {
        stats[i] = {};
        auto r = core::scanbeam_clip(pair.subject, pair.clip,
                                     geom::BoolOp::kUnion, pool, &stats[i],
                                     o);
        (void)r;
      });
    }
    std::printf("%8d %10lld | %12.3f %8d | %12.3f\n", edges,
                static_cast<long long>(stats[0].partial_polys),
                stats[0].t_merge * 1e3, stats[0].merge_phases,
                stats[1].t_merge * 1e3);
    std::printf("%8s %10s | total %6.1fms %8s | total %5.1fms\n", "", "",
                times[0] * 1e3, "", times[1] * 1e3);
  }
  return 0;
}
