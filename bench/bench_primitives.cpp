// Supporting micro-benchmarks: the parallel primitives the PRAM algorithm
// is assembled from (prefix sum, parallel mergesort, segment tree
// build/query) — the building blocks named in the paper's contribution 1.

#include <benchmark/benchmark.h>

#include <random>

#include "parallel/scan.hpp"
#include "parallel/sort.hpp"
#include "segtree/segment_tree.hpp"

namespace {

using psclip::par::ThreadPool;

ThreadPool& pool() {
  static ThreadPool p;
  return p;
}

void BM_InclusiveScan(benchmark::State& state) {
  std::vector<std::int64_t> in(static_cast<std::size_t>(state.range(0)), 3);
  std::vector<std::int64_t> out(in.size());
  for (auto _ : state) {
    psclip::par::inclusive_scan(pool(), in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InclusiveScan)->Range(1 << 12, 1 << 20);

void BM_ParallelSort(benchmark::State& state) {
  std::mt19937_64 rng(5);
  std::vector<double> base(static_cast<std::size_t>(state.range(0)));
  for (auto& x : base) x = static_cast<double>(rng());
  for (auto _ : state) {
    state.PauseTiming();
    auto v = base;
    state.ResumeTiming();
    psclip::par::parallel_sort(pool(), v);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParallelSort)->Range(1 << 12, 1 << 19);

void BM_SegmentTreeBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(9);
  std::vector<double> breaks;
  for (std::size_t i = 0; i <= n; ++i) breaks.push_back(static_cast<double>(i));
  std::vector<std::pair<double, double>> ranges(n);
  for (auto& r : ranges) {
    double a = static_cast<double>(rng() % n);
    double b = static_cast<double>(rng() % n);
    if (a > b) std::swap(a, b);
    r = {a, b + 1.0};
  }
  for (auto _ : state) {
    auto t = psclip::segtree::SegmentTree::build(pool(), breaks, ranges);
    benchmark::DoNotOptimize(&t);
  }
}
BENCHMARK(BM_SegmentTreeBuild)->Range(1 << 8, 1 << 14);

void BM_SegmentTreeStabAll(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(13);
  std::vector<double> breaks;
  for (std::size_t i = 0; i <= n; ++i) breaks.push_back(static_cast<double>(i));
  std::vector<std::pair<double, double>> ranges(n);
  for (auto& r : ranges) {
    double a = static_cast<double>(rng() % n);
    double b = static_cast<double>(rng() % n);
    if (a > b) std::swap(a, b);
    r = {a, b + 1.0};
  }
  const auto t = psclip::segtree::SegmentTree::build(pool(), breaks, ranges);
  for (auto _ : state) {
    auto all = t.stab_all(pool());
    benchmark::DoNotOptimize(all.ids.data());
    state.counters["k_prime"] = static_cast<double>(all.ids.size());
  }
}
BENCHMARK(BM_SegmentTreeStabAll)->Range(1 << 8, 1 << 13);

}  // namespace

BENCHMARK_MAIN();
