// Table II: the scanbeam table for a self-intersecting subject clipped by
// a convex clip polygon, in the spirit of the paper's Fig. 2 example —
// for each scanbeam, the active edges and the labeled output activity.

#include <cstdio>

#include "bench_util.hpp"
#include "core/beam_sweep.hpp"
#include "core/scanbeam.hpp"
#include "geom/perturb.hpp"
#include "parallel/thread_pool.hpp"
#include "seq/bounds.hpp"

int main() {
  using namespace psclip;
  bench::header("Table II — scanbeam table (edges and partial polygons per beam)",
                "paper Table II / Fig. 2");

  // Fig. 2 flavour: self-intersecting subject (bowtie-like, labeled s*)
  // overlapped by a concave clip polygon (labeled c*).
  geom::PolygonSet subject = geom::make_polygon(
      {{0.5, 0.0}, {8.0, 5.5}, {7.5, 0.4}, {1.0, 6.0}, {0.0, 3.0}});
  geom::PolygonSet clip = geom::make_polygon(
      {{2.0, 1.0}, {9.0, 1.4}, {9.5, 4.0}, {5.0, 3.1}, {3.0, 5.0}});

  geom::PolygonSet s = geom::cleaned(subject), c = geom::cleaned(clip);
  geom::remove_horizontals(s);
  geom::remove_horizontals(c);
  const seq::BoundTable bt = seq::build_bounds(s, c);

  par::ThreadPool pool(2);
  const auto part = core::partition_scanbeams(pool, bt);

  std::printf("%-6s %-24s %6s %6s %9s %9s\n", "beam", "y-range", "edges",
              "cross", "partials", "area");
  for (std::size_t b = 0; b < part.num_beams(); ++b) {
    const auto lo = static_cast<std::size_t>(part.offsets[b]);
    const auto hi = static_cast<std::size_t>(part.offsets[b + 1]);
    const auto br = core::process_beam(
        bt, std::span<const std::int32_t>(part.edge_ids).subspan(lo, hi - lo),
        part.ys[b], part.ys[b + 1], geom::BoolOp::kIntersection);
    double area = 0;
    for (const auto& r : br.rings) area += geom::signed_area(r);
    char range[64];
    std::snprintf(range, sizeof range, "[%7.3f, %7.3f]", part.ys[b],
                  part.ys[b + 1]);
    std::printf("%-6zu %-24s %6zu %6lld %9zu %9.4f\n", b, range, hi - lo,
                static_cast<long long>(br.intersections), br.rings.size(),
                area);
  }
  std::printf("\nn (edges) = %zu, m (beams) = %zu, k' = %lld\n",
              bt.num_edges(), part.num_beams(),
              static_cast<long long>(part.k_prime(bt.num_edges())));
  return 0;
}
