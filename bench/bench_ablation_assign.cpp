// Ablation: the three slab-assignment modes of the two-sets clipper —
// the paper's replicate-and-deduplicate scheme against the exact
// alternatives this library adds (subject-owner, block closure) — on the
// Intersect(3,4) and Union(3,4) workloads. Reported per mode: wall time,
// total clip work across slabs (serialized), duplicates removed, and the
// area deviation from the sequential result.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "data/gis_sim.hpp"
#include "mt/multiset.hpp"
#include "seq/vatti.hpp"

int main() {
  using namespace psclip;
  const double scale = bench::dataset_scale();
  bench::header("Ablation — multiset slab assignment modes",
                "paper §IV replication scheme vs exact alternatives");
  std::printf("dataset scale = %g, slabs = 8\n", scale);

  const auto d3 = data::make_dataset(3, scale);
  const auto d4 = data::make_dataset(4, scale);

  struct Job {
    const char* name;
    geom::BoolOp op;
  };
  const Job jobs[] = {{"Intersect(3,4)", geom::BoolOp::kIntersection},
                      {"Union(3,4)", geom::BoolOp::kUnion}};
  const mt::MultisetAssign modes[] = {mt::MultisetAssign::kSubjectOwner,
                                      mt::MultisetAssign::kReplicate,
                                      mt::MultisetAssign::kBlockClosure};

  for (const auto& job : jobs) {
    const geom::PolygonSet seq_result = seq::vatti_clip(d3, d4, job.op);
    const double seq_area = geom::signed_area(seq_result);
    std::printf("\n%s (sequential area %.6f):\n", job.name, seq_area);
    std::printf("%-15s %10s %12s %10s %8s %12s\n", "mode", "time (ms)",
                "work (ms)", "max slab", "dups", "area dev");
    for (const auto mode : modes) {
      par::ThreadPool pool(1);  // serialized: times are work measurements
      mt::MultisetOptions o;
      o.slabs = 8;
      o.assign = mode;
      mt::Alg2Stats st;
      geom::PolygonSet r;
      const double sec = bench::time_median3(
          [&] { r = mt::multiset_clip(d3, d4, job.op, pool, o, &st); });
      double work = 0.0, mx = 0.0;
      for (const auto& s : st.slabs) {
        work += s.seconds;
        mx = std::max(mx, s.seconds);
      }
      const double dev = std::fabs(geom::signed_area(r) - seq_area) /
                         (1.0 + std::fabs(seq_area));
      std::printf("%-15s %10.2f %12.2f %10.2f %8lld %12.1e\n",
                  mt::to_string(mode), sec * 1e3, work * 1e3, mx * 1e3,
                  static_cast<long long>(st.duplicates_removed), dev);
    }
  }
  std::printf(
      "\nsubject-owner: exact for INT/DIFF, least work, no dedup.\n"
      "replicate (paper): exact for INT; union deviates when clusters span "
      "slabs.\nblock-closure: exact for all ops; work degrades when MBR "
      "intervals chain.\n");
  return 0;
}
