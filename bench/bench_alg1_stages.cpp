// Algorithm 1 stage analysis (paper §III-E): per-stage times and the
// output-sensitivity counters n, m, k, k'. The interesting property is
// that total work tracks n + k + k' — the quantity the PRAM bound is
// expressed in — rather than n^2.

#include <cstdio>

#include "bench_util.hpp"
#include "core/algorithm1.hpp"
#include "data/synthetic.hpp"

int main() {
  using namespace psclip;
  bench::header("Algorithm 1 — stage times and output-sensitivity counters",
                "paper §III-E analysis");

  par::ThreadPool pool;
  std::printf("%8s %8s %8s %8s %10s | %10s %10s %10s %12s\n", "n", "m", "k",
              "k'", "n+k+k'", "sort+part", "beams(ms)", "merge(ms)",
              "us/(n+k+k')");
  for (int edges : {500, 1000, 2000, 4000, 8000, 16000}) {
    const auto pair = data::synthetic_pair(41, edges);
    core::Alg1Stats st;
    const double sec = bench::time_median3([&] {
      st = {};
      auto r = core::scanbeam_clip(pair.subject, pair.clip,
                                   geom::BoolOp::kIntersection, pool, &st);
      (void)r;
    });
    const double nkk = static_cast<double>(st.edges + st.intersections +
                                           st.k_prime);
    std::printf("%8lld %8lld %8lld %8lld %10.0f | %10.3f %10.3f %10.3f %12.3f\n",
                static_cast<long long>(st.edges),
                static_cast<long long>(st.scanbeams),
                static_cast<long long>(st.intersections),
                static_cast<long long>(st.k_prime), nkk,
                st.t_sort_partition * 1e3, st.t_beams * 1e3,
                st.t_merge * 1e3, sec * 1e6 / nkk);
  }
  std::printf("\nflat us/(n+k+k') = the output-sensitive work bound in "
              "action (tree merge, segment-tree partition).\n");
  return 0;
}
