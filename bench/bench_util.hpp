#pragma once

// Shared helpers for the benchmark harness. Every bench binary regenerates
// one table or figure of the paper (see DESIGN.md §4) and prints it in a
// paper-style layout; micro-benchmarks additionally register
// google-benchmark counters.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "parallel/timing.hpp"

namespace psclip::bench {

/// Value of a `--json <path>` command-line flag, or nullptr when absent.
/// Bench binaries that support machine-readable output call this from
/// main(argc, argv) and mirror their tables into the named file.
inline const char* json_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) return argv[i + 1];
  return nullptr;
}

/// Version stamp every bench report carries (as "schema_version") so
/// downstream tooling can detect layout changes. Bump when a key is
/// renamed/removed or its meaning changes; adding keys is compatible.
///   2: per-phase timings split into *_wall_ms / *_cpu_ms (schema 1
///      reported per-worker phase sums in the same column as wall times,
///      so "clip" could exceed the run total at slabs = 1).
///   3: *_cpu_ms fields now come from the thread CPU clock
///      (par::ThreadCpuTimer) instead of wall timers inside the parallel
///      tasks — schema 2 double-charged time a worker was descheduled, the
///      artifact behind the reported clip-CPU inflation under slabbing.
///      Every report also carries "hw_threads" (host hardware concurrency)
///      so scaling numbers can be interpreted on the machine that made
///      them; benches that own a pool additionally stamp "pool_threads".
///   4: per-slab rows gain "peak_arena_bytes" (capacity high-water mark of
///      the scratch arena that served the slab, the quantity the request
///      memory budget charges — see DESIGN.md §11), and the governance
///      overhead gate writes BENCH_governance.json.
inline constexpr long long kReportSchemaVersion = 4;

/// Append-only JSON object writer for bench results — scalar fields plus
/// named arrays of flat row objects, enough for "one table = one array"
/// reports without a JSON dependency. Keys/strings must not need escaping
/// (bench code controls both). write_file() prepends "schema_version"
/// (kReportSchemaVersion) unless the caller already set one.
class JsonReport {
 public:
  void field(const std::string& key, double v) { fields_.emplace_back(key, num(v)); }
  void field(const std::string& key, long long v) {
    fields_.emplace_back(key, std::to_string(v));
  }
  void field(const std::string& key, const std::string& v) {
    fields_.emplace_back(key, "\"" + v + "\"");
  }

  /// Start a new row in array `name`; subsequent cell() calls fill it.
  void row(const std::string& name) {
    rows_.push_back({name, {}});
  }
  void cell(const std::string& key, double v) { rows_.back().kv.emplace_back(key, num(v)); }
  void cell(const std::string& key, long long v) {
    rows_.back().kv.emplace_back(key, std::to_string(v));
  }
  void cell(const std::string& key, const std::string& v) {
    rows_.back().kv.emplace_back(key, "\"" + v + "\"");
  }

  /// Serialize to `path`. Returns false (and prints to stderr) on failure.
  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n");
    bool first = true;
    bool have_version = false, have_hw = false;
    for (const auto& [k, v] : fields_) {
      if (k == "schema_version") have_version = true;
      if (k == "hw_threads") have_hw = true;
    }
    if (!have_version) {
      std::fprintf(f, "  \"schema_version\": %lld", kReportSchemaVersion);
      first = false;
    }
    if (!have_hw) {
      std::fprintf(f, "%s  \"hw_threads\": %u", first ? "" : ",\n",
                   std::thread::hardware_concurrency());
      first = false;
    }
    for (const auto& [k, v] : fields_) {
      std::fprintf(f, "%s  \"%s\": %s", first ? "" : ",\n", k.c_str(), v.c_str());
      first = false;
    }
    // Group rows by array name, preserving first-appearance order.
    std::vector<std::string> names;
    for (const auto& r : rows_)
      if (std::find(names.begin(), names.end(), r.array) == names.end())
        names.push_back(r.array);
    for (const auto& name : names) {
      std::fprintf(f, "%s  \"%s\": [", first ? "" : ",\n", name.c_str());
      first = false;
      bool first_row = true;
      for (const auto& r : rows_) {
        if (r.array != name) continue;
        std::fprintf(f, "%s\n    {", first_row ? "" : ",");
        first_row = false;
        bool first_cell = true;
        for (const auto& [k, v] : r.kv) {
          std::fprintf(f, "%s\"%s\": %s", first_cell ? "" : ", ", k.c_str(),
                       v.c_str());
          first_cell = false;
        }
        std::fprintf(f, "}");
      }
      std::fprintf(f, "\n  ]");
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  static std::string num(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
  }

  struct Row {
    std::string array;
    std::vector<std::pair<std::string, std::string>> kv;
  };
  std::vector<std::pair<std::string, std::string>> fields_;
  std::vector<Row> rows_;
};

/// Dataset scale factor for the Table III simulations. The paper's full
/// sizes (millions of edges) are reproduced with PSCLIP_BENCH_SCALE=1;
/// the default keeps every binary in laptop/CI territory.
inline double dataset_scale() {
  if (const char* s = std::getenv("PSCLIP_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 0.01;
}

/// Thread counts swept by the scaling figures (the paper sweeps 1..64 on
/// its Opteron; we sweep what is plausible on the host but always include
/// the full ladder so the harness output shape matches the paper's).
inline std::vector<unsigned> thread_ladder() {
  if (const char* s = std::getenv("PSCLIP_BENCH_THREADS")) {
    std::vector<unsigned> out;
    int v = std::atoi(s);
    for (unsigned t = 1; t <= static_cast<unsigned>(v > 0 ? v : 8); t *= 2)
      out.push_back(t);
    return out;
  }
  return {1, 2, 4, 8};
}

/// Median-of-three wall time of `fn`, in seconds.
inline double time_median3(const std::function<void()>& fn) {
  double best[3];
  for (double& b : best) {
    par::WallTimer t;
    fn();
    b = t.seconds();
  }
  if (best[0] > best[1]) std::swap(best[0], best[1]);
  if (best[1] > best[2]) std::swap(best[1], best[2]);
  if (best[0] > best[1]) std::swap(best[0], best[1]);
  return best[1];
}

inline void header(const char* what, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n(reproduces %s)\n", what, paper_ref);
  std::printf("================================================================\n");
}

}  // namespace psclip::bench
