#pragma once

// Shared helpers for the benchmark harness. Every bench binary regenerates
// one table or figure of the paper (see DESIGN.md §4) and prints it in a
// paper-style layout; micro-benchmarks additionally register
// google-benchmark counters.

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "parallel/timing.hpp"

namespace psclip::bench {

/// Dataset scale factor for the Table III simulations. The paper's full
/// sizes (millions of edges) are reproduced with PSCLIP_BENCH_SCALE=1;
/// the default keeps every binary in laptop/CI territory.
inline double dataset_scale() {
  if (const char* s = std::getenv("PSCLIP_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 0.01;
}

/// Thread counts swept by the scaling figures (the paper sweeps 1..64 on
/// its Opteron; we sweep what is plausible on the host but always include
/// the full ladder so the harness output shape matches the paper's).
inline std::vector<unsigned> thread_ladder() {
  if (const char* s = std::getenv("PSCLIP_BENCH_THREADS")) {
    std::vector<unsigned> out;
    int v = std::atoi(s);
    for (unsigned t = 1; t <= static_cast<unsigned>(v > 0 ? v : 8); t *= 2)
      out.push_back(t);
    return out;
  }
  return {1, 2, 4, 8};
}

/// Median-of-three wall time of `fn`, in seconds.
inline double time_median3(const std::function<void()>& fn) {
  double best[3];
  for (double& b : best) {
    par::WallTimer t;
    fn();
    b = t.seconds();
  }
  if (best[0] > best[1]) std::swap(best[0], best[1]);
  if (best[1] > best[2]) std::swap(best[1], best[2]);
  if (best[0] > best[1]) std::swap(best[0], best[1]);
  return best[1];
}

inline void header(const char* what, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n(reproduces %s)\n", what, paper_ref);
  std::printf("================================================================\n");
}

}  // namespace psclip::bench
