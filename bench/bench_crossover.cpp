// Crossover study: sequential Vatti vs Algorithm 1 (scanbeam divide and
// conquer) vs Algorithm 2 (slab partitioning) across input sizes — the
// "which algorithm when" question a user of the library faces, and the
// practical counterpart of the paper's cost comparison against [1].
// Reported per engine: wall time on this host plus the decomposition's
// ideal speedup where applicable.

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "core/algorithm1.hpp"
#include "data/synthetic.hpp"
#include "mt/algorithm2.hpp"
#include "seq/vatti.hpp"

int main() {
  using namespace psclip;
  bench::header("Crossover — sequential vs Algorithm 1 vs Algorithm 2",
                "library engine-selection guidance");

  par::ThreadPool pool;
  const unsigned slabs = bench::thread_ladder().back();
  std::printf("%8s | %10s | %10s %9s %9s | %10s %12s\n", "edges", "seq (ms)",
              "alg1 (ms)", "k", "k'", "alg2 (ms)", "alg2 ideal");
  for (int edges : {500, 1000, 2000, 4000, 8000, 16000}) {
    const auto pair = data::synthetic_pair(81, edges);

    const double t_seq = bench::time_median3([&] {
      auto r = seq::vatti_clip(pair.subject, pair.clip,
                               geom::BoolOp::kIntersection);
      (void)r;
    });

    core::Alg1Stats a1;
    const double t_a1 = bench::time_median3([&] {
      a1 = {};
      auto r = core::scanbeam_clip(pair.subject, pair.clip,
                                   geom::BoolOp::kIntersection, pool, &a1);
      (void)r;
    });

    mt::Alg2Options o;
    o.slabs = slabs;
    const double t_a2 = bench::time_median3([&] {
      auto r = mt::slab_clip(pair.subject, pair.clip,
                             geom::BoolOp::kIntersection, pool, o);
      (void)r;
    });
    // Serialized run for the decomposition metric.
    par::ThreadPool serial(1);
    mt::Alg2Stats st;
    mt::slab_clip(pair.subject, pair.clip, geom::BoolOp::kIntersection,
                  serial, o, &st);
    double work = 0.0, mx = 0.0;
    for (const auto& s : st.slabs) {
      work += s.seconds;
      mx = std::max(mx, s.seconds);
    }
    const double ideal = mx > 0.0 ? t_seq / mx : 1.0;

    std::printf("%8d | %10.3f | %10.3f %9lld %9lld | %10.3f %11.2fx\n",
                edges, t_seq * 1e3, t_a1 * 1e3,
                static_cast<long long>(a1.intersections),
                static_cast<long long>(a1.k_prime), t_a2 * 1e3, ideal);
  }
  std::printf(
      "\nAlgorithm 1 pays the k' (virtual vertex) tax for beam "
      "independence — the PRAM trade-off the paper analyses; Algorithm 2 "
      "keeps sequential-level work per slab and is the practical engine, "
      "exactly the paper's conclusion.\n");
  return 0;
}
