// Fig. 10: scalability of intersection and union on the (simulated)
// real-world datasets versus thread count. The paper finds the larger
// datasets (3, 4) scale better than the smaller ones (1, 2).

#include <cstdio>

#include "bench_util.hpp"
#include "data/gis_sim.hpp"
#include "mt/multiset.hpp"

int main() {
  using namespace psclip;
  const double scale = bench::dataset_scale();
  bench::header("Fig. 10 — scaling of INT/UNION on the GIS datasets",
                "paper Fig. 10");
  std::printf("dataset scale = %g\n", scale);

  const auto d1 = data::make_dataset(1, scale);
  const auto d2 = data::make_dataset(2, scale);
  const auto d3 = data::make_dataset(3, scale);
  const auto d4 = data::make_dataset(4, scale);

  struct Job {
    const char* name;
    const geom::PolygonSet* a;
    const geom::PolygonSet* b;
    geom::BoolOp op;
    // Union uses the paper's replicate-and-deduplicate scheme (its exact
    // alternative, block closure, serializes on interleaved layers).
    mt::MultisetAssign assign;
  };
  const Job jobs[] = {
      {"Intersect(1,2)", &d1, &d2, geom::BoolOp::kIntersection,
       mt::MultisetAssign::kAuto},
      {"Union(1,2)", &d1, &d2, geom::BoolOp::kUnion,
       mt::MultisetAssign::kReplicate},
      {"Intersect(3,4)", &d3, &d4, geom::BoolOp::kIntersection,
       mt::MultisetAssign::kAuto},
      {"Union(3,4)", &d3, &d4, geom::BoolOp::kUnion,
       mt::MultisetAssign::kReplicate},
  };

  for (const auto& job : jobs) {
    std::printf("\n%s  (A: %zu polys/%zu edges, B: %zu polys/%zu edges)\n",
                job.name, job.a->num_contours(), job.a->num_vertices(),
                job.b->num_contours(), job.b->num_vertices());
    std::printf("%8s %12s %10s %12s %12s %12s\n", "threads", "time (ms)",
                "speedup", "ideal-spdup", "out polys", "imbalance");
    double base = 0.0;
    for (unsigned t : bench::thread_ladder()) {
      par::ThreadPool pool(t);
      mt::MultisetOptions o;
      o.slabs = t;
      o.assign = job.assign;
      mt::Alg2Stats st;
      geom::PolygonSet r;
      const double sec = bench::time_median3(
          [&] { r = mt::multiset_clip(*job.a, *job.b, job.op, pool, o, &st); });
      // Decomposition metrics from a serialized run (see bench_fig8).
      par::ThreadPool serial(1);
      mt::multiset_clip(*job.a, *job.b, job.op, serial, o, &st);
      if (base == 0.0) base = sec;
      std::printf("%8u %12.3f %9.2fx %11.2fx %12lld %12.2f\n", t, sec * 1e3,
                  base / sec, st.ideal_speedup(),
                  static_cast<long long>(st.output_contours),
                  st.load_imbalance());
    }
  }
  return 0;
}
