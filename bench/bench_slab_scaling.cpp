// Slab-clip CPU scaling gate — the regression this PR exists to kill.
//
// The question: when the same request is cut into p slabs instead of 1, how
// much *extra CPU* does the clip phase burn? Before the fused partition,
// every slab materialized its rectangle-clipped inputs and then re-derived
// the Vatti sweep structures from scratch (clean + coalesce + perturb +
// bound decomposition + schedule sort), so slabbing inflated clip CPU by
// ~2x even though the slabs' touched edges barely grew. The fused partition
// (Alg2Partition::kFused) copies globally prepared bound fragments and
// slices one shared schedule, making per-slab setup cost proportional to
// what the slab actually sweeps.
//
// Gates (exit nonzero on violation, what CI's perf-smoke keys on):
//   1. inflation: clip_cpu(slabs=p) / clip_cpu(slabs=1) <= GATE for
//      p in {4, 8, 16}. GATE defaults to 1.30 and can be overridden with
//      PSCLIP_SCALING_GATE=<float> (CI relaxes it on tiny runners).
//   2. wall win: at p ~ hardware cores, slab_clip wall time must beat the
//      single-slab run. Skipped on hosts with <= 2 hardware threads, where
//      there is no parallelism to win with.
//
// clip_cpu is the thread-CPU-clock per-slab sum (see SlabLoad::cpu_seconds)
// — wall timers inside slab tasks double-charge descheduled time, which is
// exactly the measurement artifact the old "2x inflation" reports mixed in
// with the real re-derivation cost.
//
// With --json <path>, the sweep is mirrored to a schema-3 report
// (BENCH_scaling.json in CI and in the repo).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_util.hpp"
#include "data/synthetic.hpp"
#include "geom/bool_op.hpp"
#include "mt/algorithm2.hpp"
#include "parallel/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace psclip;
  bench::header("Slab-clip CPU scaling: fused partition inflation gate",
                "Alg 2 Steps 4-6, output-sensitive per-slab setup");

  double gate = 1.30;
  if (const char* s = std::getenv("PSCLIP_SCALING_GATE")) {
    const double v = std::atof(s);
    if (v > 0) gate = v;
  }
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  par::ThreadPool pool;
  // Floor of 400 contours (~8.8k vertices): below that, fixed per-slab
  // costs (arena borrow, schedule slice, AET setup) dominate the numerator
  // and the ratio measures overhead amortization, not re-derivation work —
  // the thing this gate exists to bound.
  const int field_count =
      std::max(400, static_cast<int>(4000 * bench::dataset_scale()));
  const geom::PolygonSet subject =
      data::polygon_field(9001, field_count, 100.0, 12);
  const geom::PolygonSet clip =
      data::polygon_field(9002, field_count, 100.0, 10);
  const auto total_verts =
      static_cast<long long>(subject.num_vertices() + clip.num_vertices());
  std::printf(
      "workload: 2 x polygon_field(%d contours), %lld vertices; "
      "gate %.2fx, %u hw threads, pool %u\n\n",
      field_count, total_verts, gate, hw, pool.size());
  std::printf("%6s | %12s %12s %10s | %12s %12s\n", "slabs", "clip_cpu(ms)",
              "part_cpu(ms)", "inflation", "wall (ms)", "touched");

  bench::JsonReport report;
  report.field("bench", std::string("slab_scaling"));
  report.field("workload", std::string("polygon_field x2"));
  report.field("contours_per_layer", static_cast<long long>(field_count));
  report.field("total_vertices", total_verts);
  report.field("pool_threads", static_cast<long long>(pool.size()));
  report.field("gate", gate);

  bool gate_ok = true;
  double cpu_base = 0.0, wall_base = 0.0;
  for (const unsigned slabs : {1u, 4u, 8u, 16u}) {
    mt::Alg2Options o;
    o.slabs = slabs;  // kFused is the default partition
    mt::Alg2Stats st;
    geom::PolygonSet r;
    const double wall = bench::time_median3([&] {
      r = mt::slab_clip(subject, clip, geom::BoolOp::kUnion, pool, o, &st);
    });
    (void)r;

    long long touched = 0;
    for (const auto& sl : st.slabs) touched += sl.touched_edges;
    const double clip_cpu = st.phases.clip_cpu;
    if (slabs == 1) {
      cpu_base = clip_cpu;
      wall_base = wall;
    }
    const double inflation = cpu_base > 0.0 ? clip_cpu / cpu_base : 1.0;
    std::printf("%6u | %12.3f %12.3f %10.3f | %12.3f %12lld\n", slabs,
                clip_cpu * 1e3, st.phases.partition_cpu * 1e3, inflation,
                wall * 1e3, touched);

    report.row("scaling");
    report.cell("slabs", static_cast<long long>(slabs));
    report.cell("clip_cpu_ms", clip_cpu * 1e3);
    report.cell("partition_cpu_ms", st.phases.partition_cpu * 1e3);
    report.cell("inflation", inflation);
    report.cell("wall_ms", wall * 1e3);
    report.cell("touched_edges", touched);

    if (slabs > 1 && inflation > gate) {
      std::fprintf(stderr,
                   "FAIL: clip CPU inflation %.3fx at %u slabs exceeds the "
                   "%.2fx gate\n",
                   inflation, slabs, gate);
      gate_ok = false;
    }
    // Wall win at roughly the core count: pick the sweep point closest to
    // the host's hardware concurrency (>= 2 cores only — a serial host
    // has nothing to win with).
    if (hw > 2 && slabs > 1 &&
        (slabs >= hw || slabs * 2 > hw) && slabs <= hw * 2) {
      if (wall >= wall_base) {
        std::fprintf(stderr,
                     "FAIL: wall %.3f ms at %u slabs does not beat the "
                     "single-slab %.3f ms on a %u-thread host\n",
                     wall * 1e3, slabs, wall_base * 1e3, hw);
        gate_ok = false;
      }
    }
  }
  report.field("gate_ok", static_cast<long long>(gate_ok ? 1 : 0));

  if (const char* path = bench::json_path(argc, argv)) {
    if (!report.write_file(path)) return 1;
    std::printf("\nwrote %s\n", path);
  }
  return gate_ok ? 0 : 1;
}
